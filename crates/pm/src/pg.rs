//! ProgrammabilityGuardian (PG) — the flow-level middle-layer baseline
//! (reference \[9\] of the paper).
//!
//! PG inserts a FlowVisor-style slicing layer between controllers and
//! switches, which lets it map each offline flow to *any* active controller
//! independently of which controller other flows at the same switch use.
//! That makes recovery maximally fine-grained — PG recovers 100 % of flows
//! whenever aggregate capacity allows — at two costs the paper highlights:
//! the middle layer adds processing delay to every control interaction
//! (0.48 ms per FlowVisor request \[10\]), and PG balances controller load
//! rather than propagation delay, so its per-flow communication overhead is
//! the worst of the four solutions (Figs. 4(d), 5(f), 6(f)).
//!
//! The exact algorithm of \[9\] is not restated in this paper; we implement
//! the flow-level balanced recovery it attributes to PG: rounds of
//! least-programmable-flow-first assignment, each selection going to the
//! active controller with the most remaining capacity, followed by a
//! leftover-capacity fill.

use crate::instance::FmssmInstance;
use crate::{PmError, RecoveryAlgorithm};
use pm_sdwan::RecoveryPlan;

/// FlowVisor's average per-request processing time, from reference \[10\] of
/// the paper.
pub const FLOWVISOR_DELAY_MS: f64 = 0.48;

/// FlowVisor requests per flow-recovery control interaction: re-homing one
/// flow at one switch costs several middle-layer round trips (port-status
/// pulls for path computation, the flow-mod, the barrier and its reply),
/// each paying [`FLOWVISOR_DELAY_MS`]. Ten is the calibration that
/// reproduces the paper's "PG is about three to four times higher than PM"
/// per-flow overhead (Fig. 5(f)); see DESIGN.md substitution #4.
pub const FLOWVISOR_MSGS_PER_RECOVERY: f64 = 10.0;

/// The PG baseline algorithm.
#[derive(Debug, Clone, Copy)]
pub struct Pg {
    middle_layer_ms: f64,
}

impl Default for Pg {
    fn default() -> Self {
        Pg {
            middle_layer_ms: FLOWVISOR_DELAY_MS * FLOWVISOR_MSGS_PER_RECOVERY,
        }
    }
}

impl Pg {
    /// PG with the default FlowVisor delay.
    pub fn new() -> Self {
        Self::default()
    }

    /// PG with a custom middle-layer processing delay (per control
    /// interaction, in milliseconds).
    pub fn with_middle_layer_ms(middle_layer_ms: f64) -> Self {
        Pg { middle_layer_ms }
    }
}

impl RecoveryAlgorithm for Pg {
    fn name(&self) -> &'static str {
        "PG"
    }

    fn middle_layer_ms(&self) -> f64 {
        self.middle_layer_ms
    }

    fn is_flow_level(&self) -> bool {
        true
    }

    fn recover(&self, inst: &FmssmInstance<'_, '_>) -> Result<RecoveryPlan, PmError> {
        let _span = pm_obs::span("pg.recover");
        let m = inst.controllers().len();
        let l_count = inst.flows().len();
        let mut a: Vec<i64> = inst.residuals().iter().map(|&r| r as i64).collect();
        let mut h: Vec<u64> = vec![0; l_count];
        // Next unused entry index per flow.
        let mut cursor: Vec<usize> = vec![0; l_count];
        let mut plan = RecoveryPlan::new();
        let mut rounds = 0u64;
        let mut picks = 0u64;

        // Phase 1: balanced rounds. In each round, every flow currently at
        // the least programmability (among flows that still have unused
        // entries) receives one more SDN-mode switch, assigned to the
        // controller with the most remaining capacity.
        let phase1_span = pm_obs::span("pg.phase1");
        loop {
            rounds += 1;
            let active: Vec<usize> = (0..l_count)
                .filter(|&lp| cursor[lp] < inst.flow_entries(lp).len())
                .collect();
            if active.is_empty() || a.iter().all(|&x| x <= 0) {
                break;
            }
            let sigma = active.iter().map(|&lp| h[lp]).min().expect("non-empty");
            let mut progressed = false;
            for &lp in &active {
                if h[lp] != sigma {
                    continue;
                }
                let (ip, pbar) = inst.flow_entries(lp)[cursor[lp]];
                cursor[lp] += 1;
                // Most remaining capacity; ties to the lower controller id.
                let j = (0..m)
                    .max_by_key(|&j| (a[j], std::cmp::Reverse(j)))
                    .expect("m > 0");
                if a[j] <= 0 {
                    continue;
                }
                a[j] -= 1;
                h[lp] += pbar as u64;
                plan.set_sdn_via(inst.switches()[ip], inst.flows()[lp], inst.controllers()[j]);
                picks += 1;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        drop(phase1_span);

        // Phase 2: spend leftovers on any remaining entries.
        let phase2_span = pm_obs::span("pg.phase2");
        #[allow(clippy::needless_range_loop)] // cursor and entries are parallel
        'outer: for lp in 0..l_count {
            while cursor[lp] < inst.flow_entries(lp).len() {
                let (ip, _pbar) = inst.flow_entries(lp)[cursor[lp]];
                let j = (0..m)
                    .max_by_key(|&j| (a[j], std::cmp::Reverse(j)))
                    .expect("m > 0");
                if a[j] <= 0 {
                    break 'outer;
                }
                cursor[lp] += 1;
                a[j] -= 1;
                plan.set_sdn_via(inst.switches()[ip], inst.flows()[lp], inst.controllers()[j]);
                picks += 1;
            }
        }
        drop(phase2_span);
        if pm_obs::enabled() {
            pm_obs::count("pg.rounds", rounds);
            pm_obs::count("pg.sdn_mode_picks", picks);
            pm_obs::count(
                "pg.flows_touched",
                h.iter().filter(|&&v| v > 0).count() as u64,
            );
            pm_obs::count(
                "pg.capacity_residual_left",
                a.iter().map(|&v| v.max(0) as u64).sum(),
            );
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_sdwan::{ControllerId, PlanMetrics, Programmability, SdWanBuilder};

    fn setup() -> (pm_sdwan::SdWan, Programmability) {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let prog = Programmability::compute(&net);
        (net, prog)
    }

    #[test]
    fn valid_flow_level_plans() {
        let (net, prog) = setup();
        for c in 0..6 {
            let sc = net.fail(&[ControllerId(c)]).unwrap();
            let inst = FmssmInstance::new(&sc, &prog);
            let plan = Pg::new().recover(&inst).unwrap();
            plan.validate(&sc, &prog, true).unwrap();
        }
    }

    #[test]
    fn recovers_all_recoverable_flows_under_headline_failure() {
        // Flow-level granularity: even when γ(s13) fits no controller, PG
        // splits the hub's flows across controllers.
        let (net, prog) = setup();
        let sc = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
        let inst = FmssmInstance::new(&sc, &prog);
        let plan = Pg::new().recover(&inst).unwrap();
        plan.validate(&sc, &prog, true).unwrap();
        let metrics = PlanMetrics::compute(&sc, &prog, &plan, 0.0);
        // PG recovers at least one flow per recoverable flow or runs the
        // controllers dry trying.
        let capacity: u32 = sc
            .active_controllers()
            .iter()
            .map(|&c| sc.residual_capacity(c))
            .sum();
        assert!(
            metrics.recovered_flows == inst.recoverable_flow_count()
                || metrics.total_capacity_used() == capacity,
            "PG must recover everything or exhaust capacity"
        );
    }

    #[test]
    fn hub_flows_split_across_controllers() {
        let (net, prog) = setup();
        let sc = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
        let inst = FmssmInstance::new(&sc, &prog);
        let plan = Pg::new().recover(&inst).unwrap();
        let hub = pm_sdwan::SwitchId(13);
        let ctrls: std::collections::BTreeSet<_> = plan
            .sdn_selections()
            .filter(|&(s, _, _)| s == hub)
            .map(|(_, _, c)| c)
            .collect();
        assert!(
            ctrls.len() >= 2,
            "hub flows must be split across ≥ 2 controllers: {ctrls:?}"
        );
    }

    #[test]
    fn middle_layer_delay_reported() {
        assert_eq!(
            Pg::new().middle_layer_ms(),
            FLOWVISOR_DELAY_MS * FLOWVISOR_MSGS_PER_RECOVERY
        );
        assert_eq!(Pg::with_middle_layer_ms(1.0).middle_layer_ms(), 1.0);
        assert!(Pg::new().is_flow_level());
    }

    #[test]
    fn balanced_least_programmability() {
        // PG's min programmability over recoverable flows should match PM's
        // (both balance before maximizing).
        let (net, prog) = setup();
        let sc = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
        let inst = FmssmInstance::new(&sc, &prog);
        let plan = Pg::new().recover(&inst).unwrap();
        let metrics = PlanMetrics::compute(&sc, &prog, &plan, 0.0);
        // Every recoverable flow got at least its first entry (capacity
        // permitting): min over recovered flows ≥ 2.
        let recovered_min = metrics
            .per_flow_programmability
            .iter()
            .filter(|&&p| p > 0)
            .min()
            .copied()
            .unwrap_or(0);
        assert!(recovered_min >= 2);
    }

    #[test]
    fn deterministic() {
        let (net, prog) = setup();
        let sc = net.fail(&[ControllerId(3), ControllerId(5)]).unwrap();
        let inst = FmssmInstance::new(&sc, &prog);
        assert_eq!(
            Pg::new().recover(&inst).unwrap(),
            Pg::new().recover(&inst).unwrap()
        );
    }
}
