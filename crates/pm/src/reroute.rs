//! Traffic engineering on recovered programmability.
//!
//! Path programmability is not an end in itself: the paper motivates it as
//! the ability to "dynamically reroute flows under network variation"
//! (Section II-A). This module closes that loop: given a recovery plan, it
//! answers *where* each flow can still be steered and computes concrete
//! single-deviation reroutes around a congested or failed link —
//! exactly the operation an SD-WAN traffic engineering loop performs.
//!
//! A reroute deviates at one programmable switch `s` onto a loop-free
//! alternate next hop `v` (strictly closer to the destination, so the move
//! is guaranteed loop-free); from `v` on, the packet follows the legacy
//! shortest-path forwarding — in hybrid switches that is one `FlowMod` at
//! `s` and nothing else.

use crate::PmError;
use pm_sdwan::{FailureScenario, FlowId, Programmability, RecoveryPlan, SdWan, SwitchId};
use pm_topo::paths::{self, PathCounts};
use std::collections::HashMap;

/// Rerouting engine over a network, a failure scenario and the recovery
/// plan in force.
pub struct Rerouter<'a, 'net> {
    net: &'net SdWan,
    scenario: &'a FailureScenario<'net>,
    prog: &'a Programmability,
    plan: &'a RecoveryPlan,
    /// Cached destination-rooted path counts.
    counts: HashMap<SwitchId, PathCounts>,
    /// Cached legacy (shortest-path) trees per destination.
    legacy: HashMap<SwitchId, paths::ShortestPathTree>,
}

impl<'a, 'net> Rerouter<'a, 'net> {
    /// Builds a rerouter for the given plan.
    pub fn new(
        scenario: &'a FailureScenario<'net>,
        prog: &'a Programmability,
        plan: &'a RecoveryPlan,
    ) -> Self {
        Rerouter {
            net: scenario.network(),
            scenario,
            prog,
            plan,
            counts: HashMap::new(),
            legacy: HashMap::new(),
        }
    }

    /// `true` if flow `l` can be steered at switch `s` right now:
    /// `s` is on the path with `β = 1` and either online (its own
    /// controller is alive) or recovered in SDN mode for this flow.
    pub fn is_programmable_at(&self, l: FlowId, s: SwitchId) -> bool {
        if !self.prog.beta(l, s) {
            return false;
        }
        if self.scenario.is_offline(s) {
            self.plan.is_sdn(s, l)
        } else {
            true // its domain controller survived
        }
    }

    /// The switches where flow `l` can currently be steered, in path order.
    pub fn programmable_switches(&self, l: FlowId) -> Vec<SwitchId> {
        self.net
            .flow(l)
            .path
            .clone()
            .into_iter()
            .filter(|&s| self.is_programmable_at(l, s))
            .collect()
    }

    /// Current programmability of flow `l` under the plan, counting both
    /// recovered offline switches and still-online switches on its path.
    pub fn effective_programmability(&self, l: FlowId) -> u64 {
        self.net
            .flow(l)
            .path
            .iter()
            .filter(|&&s| self.is_programmable_at(l, s))
            .map(|&s| self.prog.pbar(l, s) as u64)
            .sum()
    }

    /// Computes a reroute of flow `l` that avoids the undirected link
    /// `(a, b)`: the deviation happens at one programmable switch, the new
    /// next hop is a loop-free alternate, and the tail follows legacy
    /// shortest-path forwarding. Returns the full new path, or an error if
    /// the flow cannot avoid the link with a single programmable deviation.
    ///
    /// # Errors
    ///
    /// [`PmError::Degenerate`] when the flow does not use the link (nothing
    /// to do) or no programmable deviation avoids it.
    pub fn reroute_around_link(
        &mut self,
        l: FlowId,
        a: SwitchId,
        b: SwitchId,
    ) -> Result<RerouteAction, PmError> {
        let flow = self.net.flow(l);
        let uses_link = flow
            .path
            .windows(2)
            .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a));
        if !uses_link {
            return Err(PmError::Degenerate(format!(
                "{l} does not traverse {a}–{b}"
            )));
        }
        let dst = flow.dst;
        // Cache per-destination structures.
        if !self.counts.contains_key(&dst) {
            self.counts
                .insert(dst, PathCounts::toward(self.net.topology(), dst.node()));
            self.legacy
                .insert(dst, paths::dijkstra(self.net.topology(), dst.node()));
        }

        // Try deviations at programmable switches, preferring the one
        // closest to the congested link (smallest path change).
        let link_pos = flow
            .path
            .windows(2)
            .position(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
            .expect("checked above");
        let mut candidates: Vec<usize> = (0..=link_pos)
            .filter(|&i| self.is_programmable_at(l, flow.path[i]))
            .collect();
        candidates.reverse(); // nearest to the link first

        for i in candidates {
            let s = flow.path[i];
            let current_next = flow.path[i + 1];
            let counts = &self.counts[&dst];
            let hops: Vec<SwitchId> = counts
                .next_hops(self.net.topology(), s.node())
                .map(|v| SwitchId(v.index()))
                .filter(|&v| v != current_next)
                .collect();
            for v in hops {
                if let Some(path) = self.compose_path(&flow.path[..=i], s, v, dst) {
                    let avoids = !path
                        .windows(2)
                        .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a));
                    if avoids {
                        return Ok(RerouteAction {
                            flow: l,
                            at: s,
                            new_next_hop: v,
                            path,
                        });
                    }
                }
            }
        }
        Err(PmError::Degenerate(format!(
            "{l} has no programmable deviation avoiding {a}–{b}"
        )))
    }

    /// Prefix + deviation + legacy tail; `None` if the tail revisits the
    /// prefix (would loop).
    fn compose_path(
        &self,
        prefix: &[SwitchId],
        _s: SwitchId,
        v: SwitchId,
        dst: SwitchId,
    ) -> Option<Vec<SwitchId>> {
        let legacy = &self.legacy[&dst];
        // Legacy tail: the shortest path from v to dst (what OSPF
        // forwarding does hop by hop). The tree is rooted at dst and the
        // graph is undirected, so reverse the dst→v path.
        let mut tail: Vec<SwitchId> = legacy
            .path_to(v.node())?
            .into_iter()
            .map(|n| SwitchId(n.index()))
            .collect();
        tail.reverse(); // now v … dst
        let mut path = prefix.to_vec();
        for &hop in &tail {
            if path[..prefix.len()].contains(&hop) && hop != dst {
                return None; // would revisit the prefix: loop risk
            }
            path.push(hop);
        }
        Some(path)
    }
}

/// A computed reroute: one `FlowMod` at `at` steering `flow` to
/// `new_next_hop`, yielding `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RerouteAction {
    /// The rerouted flow.
    pub flow: FlowId,
    /// The switch where the deviation is installed.
    pub at: SwitchId,
    /// The new next hop (a loop-free alternate).
    pub new_next_hop: SwitchId,
    /// The complete new forwarding path.
    pub path: Vec<SwitchId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FmssmInstance, Pm, RecoveryAlgorithm};
    use pm_sdwan::{ControllerId, SdWanBuilder};

    fn recovered_world() -> (pm_sdwan::SdWan, Programmability, RecoveryPlan) {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let prog = Programmability::compute(&net);
        let scenario = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
        let inst = FmssmInstance::new(&scenario, &prog);
        let plan = Pm::new().recover(&inst).unwrap();
        (net, prog, plan)
    }

    #[test]
    fn programmable_switches_subset_of_path() {
        let (net, prog, plan) = recovered_world();
        let scenario = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
        let rr = Rerouter::new(&scenario, &prog, &plan);
        for l in 0..net.flows().len() {
            let l = FlowId(l);
            for s in rr.programmable_switches(l) {
                assert!(net.flow(l).traverses(s));
            }
        }
    }

    #[test]
    fn recovered_flows_can_reroute_somewhere() {
        let (net, prog, plan) = recovered_world();
        let scenario = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
        let mut rr = Rerouter::new(&scenario, &prog, &plan);
        // Find a flow with an SDN-mode switch and a link after it.
        let mut rerouted = 0;
        let mut attempts = 0;
        for (s, l, _) in plan.sdn_selections() {
            let flow = net.flow(l);
            let Some(pos) = flow.path.iter().position(|&x| x == s) else {
                continue;
            };
            if pos + 2 >= flow.path.len() {
                continue;
            }
            let (a, b) = (flow.path[pos], flow.path[pos + 1]);
            attempts += 1;
            if let Ok(action) = rr.reroute_around_link(l, a, b) {
                rerouted += 1;
                // The new path must be valid: starts at src, ends at dst,
                // simple, avoids the link, and deviates at a programmable
                // switch.
                assert_eq!(*action.path.first().unwrap(), flow.src);
                assert_eq!(*action.path.last().unwrap(), flow.dst);
                let mut seen = std::collections::HashSet::new();
                assert!(
                    action.path.iter().all(|&x| seen.insert(x)),
                    "loop in {action:?}"
                );
                assert!(!action
                    .path
                    .windows(2)
                    .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a)));
                assert!(rr.is_programmable_at(l, action.at));
                // Consecutive hops are actual links.
                for w in action.path.windows(2) {
                    assert!(net.topology().find_edge(w[0].node(), w[1].node()).is_some());
                }
            }
            if attempts >= 100 {
                break;
            }
        }
        assert!(
            rerouted > 0,
            "no flow could be rerouted out of {attempts} attempts"
        );
    }

    #[test]
    fn unrecovered_flows_cannot_deviate_at_offline_switches() {
        let (net, prog, plan) = recovered_world();
        let scenario = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
        let rr = Rerouter::new(&scenario, &prog, &plan);
        for &l in scenario.offline_flows() {
            for &s in &net.flow(l).path {
                if scenario.is_offline(s) && !plan.is_sdn(s, l) {
                    assert!(!rr.is_programmable_at(l, s));
                }
            }
        }
    }

    #[test]
    fn flow_not_on_link_is_degenerate() {
        let (net, prog, plan) = recovered_world();
        let scenario = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
        let mut rr = Rerouter::new(&scenario, &prog, &plan);
        // Flow 0 runs Seattle->Portland (0 -> 1); link 19-23 is far away.
        let f0 = net.flow(FlowId(0));
        assert!(!f0.traverses(SwitchId(19)) || !f0.traverses(SwitchId(23)));
        assert!(matches!(
            rr.reroute_around_link(FlowId(0), SwitchId(19), SwitchId(23)),
            Err(PmError::Degenerate(_))
        ));
    }

    #[test]
    fn effective_programmability_counts_online_and_recovered() {
        let (net, prog, plan) = recovered_world();
        let scenario = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
        let rr = Rerouter::new(&scenario, &prog, &plan);
        for &l in scenario.offline_flows() {
            let recovered_part = plan.flow_programmability(&prog, l);
            assert!(
                rr.effective_programmability(l) >= recovered_part,
                "effective must include at least the recovered part"
            );
        }
    }
}
