//! The two-stage FMSSM formulation — the paper's *first* option in
//! Section IV-D.
//!
//! Stage 1 maximizes the least programmability `r` alone (the essential of
//! SDN, per the paper). Stage 2 maximizes the total programmability subject
//! to `r ≥ r₁*`, the stage-1 result. The paper instead picks the combined
//! weighted objective because one solve is cheaper and a right λ (chosen
//! following its reference \[17\]) yields the same optimum — a claim the test
//! `agrees_with_combined_on_small_instances` below verifies on instances
//! both solvers can finish.

use crate::heuristic::Pm;
use crate::instance::FmssmInstance;
use crate::optimal::{build_model, DelayBound, LinkingStyle, ModelObjective};
use crate::{PmError, RecoveryAlgorithm};
use pm_milp::{MilpSolver, MilpStatus};
use pm_sdwan::RecoveryPlan;
use std::time::Duration;

/// Outcome of a two-stage solve.
#[derive(Debug, Clone)]
pub struct TwoStageOutcome {
    /// The plan from stage 2 (or stage 1 if stage 2 found nothing better).
    pub plan: RecoveryPlan,
    /// Stage-1 optimum: the best achievable least programmability.
    pub stage1_r: f64,
    /// Stage-2 optimum: the best total programmability with `r ≥ stage1_r`.
    pub stage2_total: f64,
    /// Whether both stages proved optimality within their budgets.
    pub proved_optimal: bool,
    /// Total wall-clock time across both stages.
    pub elapsed: Duration,
}

/// The two-stage exact solver.
#[derive(Debug, Clone)]
pub struct TwoStage {
    time_limit_per_stage: Duration,
    linking: LinkingStyle,
    delay_bound: DelayBound,
}

impl Default for TwoStage {
    fn default() -> Self {
        TwoStage {
            time_limit_per_stage: Duration::from_secs(15),
            linking: LinkingStyle::default(),
            delay_bound: DelayBound::Scaled(3.0),
        }
    }
}

impl TwoStage {
    /// Two-stage solver with 15 s per stage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the per-stage time limit.
    pub fn time_limit_per_stage(mut self, limit: Duration) -> Self {
        self.time_limit_per_stage = limit;
        self
    }

    /// Selects how Eq. (14)'s delay budget is applied.
    pub fn delay_bound(mut self, bound: DelayBound) -> Self {
        self.delay_bound = bound;
        self
    }

    /// Runs both stages.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::NoSolution`] if stage 1 ends with no incumbent
    /// (cannot happen: the PM warm start always provides one).
    pub fn solve_detailed(&self, inst: &FmssmInstance<'_, '_>) -> Result<TwoStageOutcome, PmError> {
        let budget = self.delay_bound.budget(inst.ideal_delay_g());
        let pm_plan = Pm::new().recover(inst)?;

        // --- Stage 1: maximize r. ---
        let built1 = build_model(inst, self.linking, budget, ModelObjective::MinOnly);
        let mut solver1 = MilpSolver::new().time_limit(self.time_limit_per_stage);
        if let Some(ws) = built1.warm_start_values(inst, &pm_plan, budget) {
            solver1 = solver1.warm_start(ws);
        }
        let r1 = solver1.solve(&built1.model);
        let sol1 = r1.solution.as_ref().ok_or_else(|| PmError::NoSolution {
            reason: format!("stage 1 stopped with status {:?}", r1.status),
        })?;
        let stage1_r = sol1.objective;
        let stage1_plan = built1.extract_plan(inst, &sol1.values);

        // --- Stage 2: maximize total programmability with r ≥ r₁*. ---
        let built2 = build_model(
            inst,
            self.linking,
            budget,
            ModelObjective::TotalWithFloor(stage1_r),
        );
        let mut solver2 = MilpSolver::new().time_limit(self.time_limit_per_stage);
        // Stage 1's solution satisfies the floor by construction.
        if let Some(ws) = built2.warm_start_values(inst, &stage1_plan, budget) {
            solver2 = solver2.warm_start(ws);
        }
        let r2 = solver2.solve(&built2.model);
        let (plan, stage2_total, proved2) = match &r2.solution {
            Some(sol2) => (
                built2.extract_plan(inst, &sol2.values),
                sol2.objective,
                r2.status == MilpStatus::Optimal,
            ),
            None => {
                // Fall back to the stage-1 plan.
                let total = stage1_plan
                    .sdn_selections()
                    .map(|(s, l, _)| inst.programmability().pbar(l, s) as f64)
                    .sum();
                (stage1_plan, total, false)
            }
        };
        Ok(TwoStageOutcome {
            plan,
            stage1_r,
            stage2_total,
            proved_optimal: r1.status == MilpStatus::Optimal && proved2,
            elapsed: r1.elapsed + r2.elapsed,
        })
    }
}

impl RecoveryAlgorithm for TwoStage {
    fn name(&self) -> &'static str {
        "TwoStage"
    }

    fn recover(&self, inst: &FmssmInstance<'_, '_>) -> Result<RecoveryPlan, PmError> {
        Ok(self.solve_detailed(inst)?.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Optimal;
    use pm_sdwan::{ControllerId, PlanMetrics, Programmability, SdWanBuilder};
    use pm_topo::{builders, NodeId};

    fn small() -> (pm_sdwan::SdWan, Programmability) {
        let net = SdWanBuilder::new(builders::grid(3, 3))
            .controller(NodeId(0), 200)
            .controller(NodeId(8), 200)
            .build()
            .unwrap();
        let prog = Programmability::compute(&net);
        (net, prog)
    }

    #[test]
    fn produces_valid_plans() {
        let (net, prog) = small();
        let sc = net.fail(&[ControllerId(0)]).unwrap();
        let inst = FmssmInstance::new(&sc, &prog);
        let out = TwoStage::new().solve_detailed(&inst).unwrap();
        out.plan.validate(&sc, &prog, false).unwrap();
        assert!(out.stage1_r >= 0.0);
        assert!(out.stage2_total >= 0.0);
    }

    #[test]
    fn stage2_keeps_stage1_min() {
        let (net, prog) = small();
        let sc = net.fail(&[ControllerId(1)]).unwrap();
        let inst = FmssmInstance::new(&sc, &prog);
        let out = TwoStage::new().solve_detailed(&inst).unwrap();
        let m = PlanMetrics::compute(&sc, &prog, &out.plan, 0.0);
        assert!(
            m.min_programmability_recoverable() as f64 >= out.stage1_r - 1e-6,
            "stage 2 lost balance: min {} < r₁* {}",
            m.min_programmability_recoverable(),
            out.stage1_r
        );
    }

    #[test]
    fn agrees_with_combined_on_small_instances() {
        // The paper's claim (following its reference [17]): with the right
        // λ, the combined objective matches the two-stage optimum.
        let (net, prog) = small();
        let sc = net.fail(&[ControllerId(0)]).unwrap();
        let inst = FmssmInstance::new(&sc, &prog);
        let two = TwoStage::new()
            .delay_bound(DelayBound::Unbounded)
            .time_limit_per_stage(Duration::from_secs(20))
            .solve_detailed(&inst)
            .unwrap();
        let combined = Optimal::new()
            .delay_bound(DelayBound::Unbounded)
            .time_limit(Duration::from_secs(20))
            .solve_detailed(&inst)
            .unwrap();
        if !(two.proved_optimal && combined.proved_optimal()) {
            return; // can't compare unproven results
        }
        let m_two = PlanMetrics::compute(&sc, &prog, &two.plan, 0.0);
        let m_comb = PlanMetrics::compute(&sc, &prog, &combined.plan, 0.0);
        assert_eq!(
            m_two.min_programmability_recoverable(),
            m_comb.min_programmability_recoverable(),
            "stage-1 r must agree"
        );
        assert_eq!(
            m_two.total_programmability, m_comb.total_programmability,
            "stage-2 total must agree"
        );
    }

    #[test]
    fn never_below_pm_on_balance() {
        let (net, prog) = small();
        let sc = net.fail(&[ControllerId(0)]).unwrap();
        let inst = FmssmInstance::new(&sc, &prog);
        let pm = Pm::new().recover(&inst).unwrap();
        let m_pm = PlanMetrics::compute(&sc, &prog, &pm, 0.0);
        let out = TwoStage::new()
            .delay_bound(DelayBound::Unbounded)
            .solve_detailed(&inst)
            .unwrap();
        assert!(out.stage1_r as u64 >= m_pm.min_programmability_recoverable());
    }
}
