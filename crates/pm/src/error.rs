use std::fmt;

/// Errors from the recovery algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PmError {
    /// The SD-WAN layer rejected something (e.g. a produced plan failed
    /// validation during post-checks).
    Sdwan(pm_sdwan::SdwanError),
    /// The exact solver stopped without any feasible solution — the paper's
    /// "optimization solver may not always generate a feasible solution"
    /// case (Section VI-C3).
    NoSolution {
        /// Why the solver stopped.
        reason: String,
    },
    /// The instance is degenerate (e.g. no offline flows to recover) for an
    /// algorithm that cannot handle it.
    Degenerate(String),
}

impl fmt::Display for PmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmError::Sdwan(e) => write!(f, "sd-wan error: {e}"),
            PmError::NoSolution { reason } => write!(f, "no feasible solution: {reason}"),
            PmError::Degenerate(m) => write!(f, "degenerate instance: {m}"),
        }
    }
}

impl std::error::Error for PmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PmError::Sdwan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pm_sdwan::SdwanError> for PmError {
    fn from(e: pm_sdwan::SdwanError) -> Self {
        PmError::Sdwan(e)
    }
}
