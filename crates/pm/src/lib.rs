//! ProgrammabilityMedic: predictable path-programmability recovery under
//! multiple controller failures in SD-WANs.
//!
//! This crate is the paper's primary contribution, built on the
//! [`pm_sdwan`] domain model and the [`pm_milp`] solver substrate:
//!
//! * [`FmssmInstance`] — the Flow Mode Selection and Switch Mapping problem
//!   derived from a [`pm_sdwan::FailureScenario`] (Section IV).
//! * [`Pm`] — the paper's heuristic, Algorithm 1 (Section V).
//! * [`RetroFlow`] — the switch-level hybrid baseline \[6\].
//! * [`Pg`] — the flow-level middle-layer baseline, ProgrammabilityGuardian
//!   \[9\].
//! * [`Optimal`] — the ILP formulation P′ solved exactly (with a warm start
//!   from PM and a configurable time limit, mirroring GUROBI's role in the
//!   paper).
//! * [`RecoveryAlgorithm`] — the common interface, so evaluation harnesses
//!   can sweep all four.
//!
//! # Example
//!
//! ```
//! use pm_sdwan::{SdWanBuilder, ControllerId, PlanMetrics, Programmability};
//! use pm_core::{FmssmInstance, Pm, RecoveryAlgorithm};
//!
//! let net = SdWanBuilder::att_paper_setup().build()?;
//! let prog = Programmability::compute(&net);
//! let scenario = net.fail(&[ControllerId(3), ControllerId(4)])?;
//! let instance = FmssmInstance::new(&scenario, &prog);
//!
//! let plan = Pm::default().recover(&instance)?;
//! plan.validate(&scenario, &prog, false)?;
//! let metrics = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
//! assert!(metrics.total_programmability > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heuristic;
pub mod instance;
pub mod optimal;
pub mod pg;
pub mod reroute;
pub mod retroflow;
pub mod successive;
pub mod te;
pub mod twostage;

mod error;

pub use error::PmError;
pub use heuristic::{Pm, PmConfig, PmWorkspace};
pub use instance::FmssmInstance;
pub use optimal::{DelayBound, LinkingStyle, Optimal, OptimalOutcome};
pub use pg::Pg;
pub use reroute::{RerouteAction, Rerouter};
pub use retroflow::RetroFlow;
pub use successive::SuccessiveRecovery;
pub use te::{relieve_hotspots, ReliefReport};
pub use twostage::{TwoStage, TwoStageOutcome};

use pm_sdwan::RecoveryPlan;

/// Common interface of all recovery algorithms the paper compares.
pub trait RecoveryAlgorithm {
    /// Short display name ("PM", "RetroFlow", "PG", "Optimal").
    fn name(&self) -> &'static str;

    /// Extra per-control-interaction processing delay this solution incurs
    /// (only PG's middle layer has one).
    fn middle_layer_ms(&self) -> f64 {
        0.0
    }

    /// Whether the produced plans are flow-level (bypass the switch-mapping
    /// constraint); affects plan validation.
    fn is_flow_level(&self) -> bool {
        false
    }

    /// Computes a recovery plan for the instance.
    ///
    /// # Errors
    ///
    /// Returns an algorithm-specific [`PmError`] — e.g. the exact solver may
    /// time out without a feasible solution.
    fn recover(&self, instance: &FmssmInstance<'_, '_>) -> Result<RecoveryPlan, PmError>;
}
