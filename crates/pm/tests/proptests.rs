//! Property tests: on random networks and failure patterns, every recovery
//! algorithm must produce valid plans, respect capacity, and uphold its
//! documented guarantees.

use pm_core::{FmssmInstance, Pg, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{ControllerId, PlanMetrics, Programmability, SdWan, SdWanBuilder};
use pm_topo::builders::{waxman, WaxmanParams};
use pm_topo::NodeId;
use proptest::prelude::*;

/// A random SD-WAN: Waxman topology, 2–4 controllers at distinct nodes,
/// capacity tight enough to matter sometimes.
fn arb_net() -> impl Strategy<Value = (SdWan, Vec<ControllerId>)> {
    (8usize..=18, 0u64..1000, 2usize..=4, 1usize..=3, 50u32..400).prop_filter_map(
        "buildable network with a valid failure pattern",
        |(nodes, seed, ctrls, fail_count, capacity)| {
            let g = waxman(&WaxmanParams {
                nodes,
                seed,
                ..Default::default()
            })
            .ok()?;
            let step = nodes / ctrls;
            let mut b = SdWanBuilder::new(g);
            for c in 0..ctrls {
                b = b.controller(NodeId(c * step), capacity);
            }
            let net = b.allow_overload().build().ok()?;
            // Overloaded controllers make residual capacity zero, which is
            // legal; but reject nets where *every* controller is overloaded
            // (nothing interesting to test).
            if (0..ctrls).all(|c| net.residual_capacity(ControllerId(c)) == 0) {
                return None;
            }
            if fail_count >= ctrls {
                return None;
            }
            let failed: Vec<ControllerId> = (0..fail_count).map(ControllerId).collect();
            Some((net, failed))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three heuristics produce plans that pass full FMSSM validation.
    #[test]
    fn heuristics_always_produce_valid_plans((net, failed) in arb_net()) {
        let prog = Programmability::compute(&net);
        let scenario = net.fail(&failed).unwrap();
        let inst = FmssmInstance::new(&scenario, &prog);
        for algo in [&RetroFlow::new() as &dyn RecoveryAlgorithm, &Pm::new(), &Pg::new()] {
            let plan = algo.recover(&inst).unwrap();
            prop_assert!(
                plan.validate(&scenario, &prog, algo.is_flow_level()).is_ok(),
                "{} produced an invalid plan: {:?}",
                algo.name(),
                plan.validate(&scenario, &prog, algo.is_flow_level())
            );
        }
    }

    /// PM never recovers fewer flows than RetroFlow: per-flow granularity
    /// strictly generalizes whole-switch remapping under the same capacity.
    #[test]
    fn pm_recovers_at_least_as_many_flows_as_retroflow((net, failed) in arb_net()) {
        let prog = Programmability::compute(&net);
        let scenario = net.fail(&failed).unwrap();
        let inst = FmssmInstance::new(&scenario, &prog);
        let m_pm = PlanMetrics::compute(
            &scenario, &prog, &Pm::new().recover(&inst).unwrap(), 0.0);
        let m_rf = PlanMetrics::compute(
            &scenario, &prog, &RetroFlow::new().recover(&inst).unwrap(), 0.0);
        prop_assert!(
            m_pm.recovered_flows >= m_rf.recovered_flows,
            "PM {} < RetroFlow {}", m_pm.recovered_flows, m_rf.recovered_flows
        );
    }

    /// Capacity accounting: no algorithm overcommits any controller, and
    /// metrics agree with the plan's own usage map.
    #[test]
    fn capacity_never_overcommitted((net, failed) in arb_net()) {
        let prog = Programmability::compute(&net);
        let scenario = net.fail(&failed).unwrap();
        let inst = FmssmInstance::new(&scenario, &prog);
        for algo in [&RetroFlow::new() as &dyn RecoveryAlgorithm, &Pm::new(), &Pg::new()] {
            let plan = algo.recover(&inst).unwrap();
            let metrics = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
            for u in &metrics.controller_usage {
                prop_assert!(u.used <= u.available, "{} overcommits {u:?}", algo.name());
            }
        }
    }

    /// Per-flow programmability never exceeds the flow's structural upper
    /// bound (all β = 1 offline switches selected).
    #[test]
    fn programmability_bounded_by_structure((net, failed) in arb_net()) {
        let prog = Programmability::compute(&net);
        let scenario = net.fail(&failed).unwrap();
        let inst = FmssmInstance::new(&scenario, &prog);
        let plan = Pm::new().recover(&inst).unwrap();
        let metrics = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
        for (lp, &p) in metrics.per_flow_programmability.iter().enumerate() {
            let ub: u64 = inst.flow_entries(lp).iter().map(|&(_, pb)| pb as u64).sum();
            prop_assert!(p <= ub, "flow {lp}: {p} > structural bound {ub}");
        }
    }

    /// PG's flow-level freedom: whenever aggregate capacity covers all
    /// recoverable flows, PG recovers them all.
    #[test]
    fn pg_recovers_everything_capacity_allows((net, failed) in arb_net()) {
        let prog = Programmability::compute(&net);
        let scenario = net.fail(&failed).unwrap();
        let inst = FmssmInstance::new(&scenario, &prog);
        let total_capacity: u64 = inst.residuals().iter().map(|&r| r as u64).sum();
        let plan = Pg::new().recover(&inst).unwrap();
        let metrics = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
        if total_capacity >= inst.recoverable_flow_count() as u64 {
            prop_assert_eq!(
                metrics.recovered_flows, inst.recoverable_flow_count(),
                "PG left flows behind with capacity to spare"
            );
        }
    }

    /// Determinism across repeated runs (same inputs, same plan).
    #[test]
    fn algorithms_are_deterministic((net, failed) in arb_net()) {
        let prog = Programmability::compute(&net);
        let scenario = net.fail(&failed).unwrap();
        let inst = FmssmInstance::new(&scenario, &prog);
        prop_assert_eq!(Pm::new().recover(&inst).unwrap(), Pm::new().recover(&inst).unwrap());
        prop_assert_eq!(Pg::new().recover(&inst).unwrap(), Pg::new().recover(&inst).unwrap());
        prop_assert_eq!(
            RetroFlow::new().recover(&inst).unwrap(),
            RetroFlow::new().recover(&inst).unwrap()
        );
    }
}
