//! Edge cases: degenerate instances every algorithm must survive.

use pm_core::{FmssmInstance, Pg, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{ControllerId, PlanMetrics, Programmability, SdWanBuilder};
use pm_topo::{builders, NodeId};

/// On an odd ring no flow has any loop-free alternate: every offline flow
/// is structurally unrecoverable, and every algorithm must return an
/// empty-but-valid plan rather than panic or spin.
#[test]
fn ring_with_no_programmability_yields_empty_recovery() {
    let net = SdWanBuilder::new(builders::ring(7))
        .controller(NodeId(0), 1_000)
        .controller(NodeId(3), 1_000)
        .build()
        .unwrap();
    let prog = Programmability::compute(&net);
    let scenario = net.fail(&[ControllerId(0)]).unwrap();
    let inst = FmssmInstance::new(&scenario, &prog);
    assert_eq!(inst.recoverable_flow_count(), 0);
    assert_eq!(inst.total_iterations(), 0);

    for algo in [
        &RetroFlow::new() as &dyn RecoveryAlgorithm,
        &Pm::new(),
        &Pg::new(),
    ] {
        let plan = algo.recover(&inst).unwrap();
        plan.validate(&scenario, &prog, algo.is_flow_level())
            .unwrap();
        let m = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
        assert_eq!(m.total_programmability, 0, "{}", algo.name());
        assert_eq!(m.recovered_flows, 0);
        assert_eq!(m.recoverable_flows, 0);
        assert_eq!(
            m.recovered_fraction_of_recoverable(),
            1.0,
            "vacuous = fully recovered"
        );
    }
}

/// Zero residual capacity everywhere: algorithms must not assign anything.
#[test]
fn zero_capacity_recovers_nothing() {
    // Capacity exactly equal to each controller's own load → residual 0.
    let probe = SdWanBuilder::new(builders::grid(3, 3))
        .controller(NodeId(0), 100_000)
        .controller(NodeId(8), 100_000)
        .build()
        .unwrap();
    let caps: Vec<u32> = (0..2)
        .map(|c| probe.controller_load(ControllerId(c)))
        .collect();
    let mut b = SdWanBuilder::new(probe.topology().clone());
    for (c, &cap) in caps.iter().enumerate() {
        let node = probe.controllers()[c].node;
        b = b.controller(node, cap);
    }
    let net = b.build().unwrap();
    let prog = Programmability::compute(&net);
    let scenario = net.fail(&[ControllerId(0)]).unwrap();
    assert!(scenario
        .active_controllers()
        .iter()
        .all(|&c| scenario.residual_capacity(c) == 0));
    let inst = FmssmInstance::new(&scenario, &prog);
    for algo in [
        &RetroFlow::new() as &dyn RecoveryAlgorithm,
        &Pm::new(),
        &Pg::new(),
    ] {
        let plan = algo.recover(&inst).unwrap();
        plan.validate(&scenario, &prog, algo.is_flow_level())
            .unwrap();
        assert_eq!(
            plan.sdn_count(),
            0,
            "{} assigned flows with zero capacity",
            algo.name()
        );
    }
}

/// A single surviving controller must absorb what it can.
#[test]
fn single_survivor() {
    let net = SdWanBuilder::att_paper_setup().build().unwrap();
    let prog = Programmability::compute(&net);
    let failed: Vec<ControllerId> = (0..5).map(ControllerId).collect(); // only C22 lives
    let scenario = net.fail(&failed).unwrap();
    assert_eq!(scenario.active_controllers(), &[ControllerId(5)]);
    let inst = FmssmInstance::new(&scenario, &prog);
    for algo in [
        &RetroFlow::new() as &dyn RecoveryAlgorithm,
        &Pm::new(),
        &Pg::new(),
    ] {
        let plan = algo.recover(&inst).unwrap();
        plan.validate(&scenario, &prog, algo.is_flow_level())
            .unwrap();
        let m = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
        // Whatever is recovered must fit within C22's residual.
        assert!(m.total_capacity_used() <= scenario.residual_capacity(ControllerId(5)));
    }
    // PM and PG must use the lone survivor's full capacity (obj₂).
    let plan = Pm::new().recover(&inst).unwrap();
    let m = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
    assert_eq!(
        m.total_capacity_used(),
        scenario.residual_capacity(ControllerId(5)).min(
            (0..inst.flows().len())
                .map(|lp| inst.flow_entries(lp).len() as u32)
                .sum()
        ),
        "PM must exhaust capacity or entries"
    );
}

/// Two-switch network: the smallest possible SD-WAN.
#[test]
fn minimal_network() {
    let g = pm_topo::Graph::from_edges(2, [(0, 1, 1.0)]).unwrap();
    let net = SdWanBuilder::new(g)
        .controller(NodeId(0), 10)
        .controller(NodeId(1), 10)
        .build()
        .unwrap();
    assert_eq!(net.flows().len(), 2);
    let prog = Programmability::compute(&net);
    let scenario = net.fail(&[ControllerId(0)]).unwrap();
    let inst = FmssmInstance::new(&scenario, &prog);
    // One link, no alternates: nothing recoverable, but nothing crashes.
    assert_eq!(inst.recoverable_flow_count(), 0);
    let plan = Pm::new().recover(&inst).unwrap();
    plan.validate(&scenario, &prog, false).unwrap();
}
