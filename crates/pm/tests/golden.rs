//! Golden regression tests: exact recovery numbers for two small
//! deterministic instances.
//!
//! These lock in the observable behaviour of PM, RetroFlow, and PG —
//! total/min programmability, flows and switches recovered, and the load
//! each plan pushes onto the surviving controllers — so a future solver
//! refactor that silently changes results fails loudly here. The instances
//! are small enough to re-derive by hand if a *deliberate* behaviour change
//! makes an update necessary; when that happens, re-run with
//! `--nocapture` on the printed actuals and review every delta.

use pm_core::{FmssmInstance, Pg, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{ControllerId, PlanMetrics, Programmability, SdWan, SdWanBuilder};
use pm_topo::{builders, NodeId};

/// One algorithm's expected outcome on an instance.
struct Golden {
    algo: &'static str,
    total_programmability: u64,
    min_programmability: u64,
    recovered_flows: usize,
    recovered_switches: usize,
    /// `(controller, load the plan added)` for every surviving controller.
    remapped_load: &'static [(usize, u32)],
}

fn check(name: &str, net: &SdWan, failed: &[ControllerId], expected: &[Golden]) {
    let prog = Programmability::compute(net);
    let scenario = net.fail(failed).expect("valid failure set");
    let inst = FmssmInstance::new(&scenario, &prog);

    let algos: [(&str, &dyn RecoveryAlgorithm); 3] = [
        ("RetroFlow", &RetroFlow::new()),
        ("PM", &Pm::new()),
        ("PG", &Pg::new()),
    ];
    for ((algo_name, algo), want) in algos.iter().zip(expected) {
        assert_eq!(*algo_name, want.algo, "golden table out of order");
        let plan = algo.recover(&inst).expect("recovery succeeds");
        plan.validate(&scenario, &prog, algo.is_flow_level())
            .expect("plan valid");
        let m = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
        let ctx = format!("{name}/{algo_name}");
        assert_eq!(
            m.total_programmability, want.total_programmability,
            "{ctx}: total programmability drifted"
        );
        assert_eq!(
            m.min_programmability, want.min_programmability,
            "{ctx}: min programmability drifted"
        );
        assert_eq!(
            m.recovered_flows, want.recovered_flows,
            "{ctx}: recovered flow count drifted"
        );
        assert_eq!(
            m.recovered_switches, want.recovered_switches,
            "{ctx}: recovered switch count drifted"
        );
        let loads: Vec<(usize, u32)> = m
            .controller_usage
            .iter()
            .map(|u| (u.controller.0, u.used))
            .collect();
        assert_eq!(
            loads, want.remapped_load,
            "{ctx}: remapped load distribution drifted"
        );
    }
}

/// 3×4 grid, three controllers, middle controller fails. The instance where
/// granularity matters: RetroFlow's switch-level remap fills the survivor
/// with whole domains (74 load units for 16 flows), while PM and PG's
/// per-flow plans recover every recoverable flow (25) at half the load.
#[test]
fn grid_instance_golden() {
    let net = SdWanBuilder::new(builders::grid(3, 4))
        .controller(NodeId(0), 200)
        .controller(NodeId(5), 200)
        .controller(NodeId(11), 200)
        .all_pairs_flows()
        .build()
        .expect("grid builds");
    let scenario = net.fail(&[ControllerId(1)]).expect("valid");
    assert_eq!(scenario.offline_flows().len(), 82);
    assert_eq!(scenario.offline_switches().len(), 3);

    check(
        "grid3x4",
        &net,
        &[ControllerId(1)],
        &[
            Golden {
                algo: "RetroFlow",
                total_programmability: 49,
                min_programmability: 0,
                recovered_flows: 16,
                recovered_switches: 2,
                remapped_load: &[(0, 0), (2, 74)],
            },
            Golden {
                algo: "PM",
                total_programmability: 79,
                min_programmability: 0,
                recovered_flows: 25,
                recovered_switches: 3,
                remapped_load: &[(0, 0), (2, 32)],
            },
            Golden {
                algo: "PG",
                total_programmability: 79,
                min_programmability: 0,
                recovered_flows: 25,
                recovered_switches: 3,
                remapped_load: &[(0, 0), (2, 32)],
            },
        ],
    );
}

/// 8-node ring, two controllers, one fails. Every algorithm recovers the
/// same three flows (an even ring offers exactly one alternate per
/// antipodal pair), but the load they spend differs by an order of
/// magnitude: RetroFlow remaps whole switches (67 units), PM and PG pay
/// only for the flows that gain programmability (3 units).
#[test]
fn ring_instance_golden() {
    let net = SdWanBuilder::new(builders::ring(8))
        .controller(NodeId(0), 500)
        .controller(NodeId(4), 500)
        .all_pairs_flows()
        .build()
        .expect("ring builds");
    let scenario = net.fail(&[ControllerId(1)]).expect("valid");
    assert_eq!(scenario.offline_flows().len(), 37);
    assert_eq!(scenario.offline_switches().len(), 3);

    check(
        "ring8",
        &net,
        &[ControllerId(1)],
        &[
            Golden {
                algo: "RetroFlow",
                total_programmability: 6,
                min_programmability: 0,
                recovered_flows: 3,
                recovered_switches: 3,
                remapped_load: &[(0, 67)],
            },
            Golden {
                algo: "PM",
                total_programmability: 6,
                min_programmability: 0,
                recovered_flows: 3,
                recovered_switches: 3,
                remapped_load: &[(0, 3)],
            },
            Golden {
                algo: "PG",
                total_programmability: 6,
                min_programmability: 0,
                recovered_flows: 3,
                recovered_switches: 3,
                remapped_load: &[(0, 3)],
            },
        ],
    );
}
