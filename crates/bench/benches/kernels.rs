//! Criterion micro-benchmarks of the three hottest per-case kernels the
//! dense index-space layout targets: the programmability recompute, PM's
//! phase-1 pass, and one full sweep case through the [`SweepEngine`].
//!
//! Complements `benches/heuristic.rs` (whole-algorithm timings): these
//! isolate the kernels the arena-indexed storage flattened, so a layout
//! regression shows up here before it moves the Fig. 7 numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_bench::{EvalOptions, SweepEngine};
use pm_core::{FmssmInstance, Pm, PmConfig, RecoveryAlgorithm};
use pm_sdwan::{ControllerId, NetCache, Programmability, SdWanBuilder};
use std::hint::black_box;

/// Kernel 1: the programmability table recompute (flat flow×switch table
/// fill), with the topology cache warm — the per-network setup cost every
/// sweep pays once.
fn bench_programmability(c: &mut Criterion) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let cache = NetCache::build(&net);
    cache.topo().warm();
    c.bench_function("kernel/programmability_recompute", |b| {
        b.iter(|| Programmability::compute_cached(black_box(&net), black_box(cache.topo())))
    });
}

/// Kernel 2: PM's phase-1 pass alone (`skip_phase2`), the dense
/// selection/pool scan at the heart of Algorithm 1.
fn bench_pm_phase1(c: &mut Criterion) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let prog = Programmability::compute(&net);
    let pm = Pm::with_config(PmConfig {
        skip_phase2: true,
        ..Default::default()
    });
    let cases: Vec<(&str, Vec<ControllerId>)> = vec![
        ("1-failure (13)", vec![ControllerId(3)]),
        ("2-failure (13,20)", vec![ControllerId(3), ControllerId(4)]),
        (
            "3-failure (5,13,20)",
            vec![ControllerId(1), ControllerId(3), ControllerId(4)],
        ),
    ];
    let mut group = c.benchmark_group("kernel/pm_phase1");
    for (label, failed) in &cases {
        let scenario = net.fail(failed).expect("valid case");
        let inst = FmssmInstance::new(&scenario, &prog);
        group.bench_with_input(BenchmarkId::from_parameter(label), &inst, |b, inst| {
            b.iter(|| pm.recover(black_box(inst)).expect("pm phase 1"))
        });
    }
    group.finish();
}

/// Kernel 3: one full sweep case (scenario build from cache, instance
/// build, all heuristics, metrics) — the unit the parallel engine fans out.
fn bench_sweep_case(c: &mut Criterion) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let opts = EvalOptions {
        skip_optimal: true,
        jobs: 1,
        ..Default::default()
    };
    let engine = SweepEngine::new(&net, opts);
    let failed = [ControllerId(3), ControllerId(4)];
    c.bench_function("kernel/sweep_case (13,20)", |b| {
        b.iter(|| engine.run_case(black_box(&failed)))
    });
}

criterion_group!(
    benches,
    bench_programmability,
    bench_pm_phase1,
    bench_sweep_case
);
criterion_main!(benches);
