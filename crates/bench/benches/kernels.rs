//! Criterion micro-benchmarks of the hottest per-case kernels: the
//! programmability recompute, PM's phase-1 pass, one full sweep case
//! through the [`SweepEngine`], and the incremental solver core's delta
//! kernels against their recompute counterparts.
//!
//! Complements `benches/heuristic.rs` (whole-algorithm timings): these
//! isolate the kernels the arena-indexed storage flattened, so a layout
//! regression shows up here before it moves the Fig. 7 numbers. The
//! `*_delta` / `pm_warm_select` entries additionally assert that the
//! delta path is faster than recomputing from scratch (ratio < 1.0), so
//! an incremental path that silently degrades to recompute cost fails
//! the bench run itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_bench::{build_wan, EvalOptions, SweepEngine, WanSpec};
use pm_core::{FmssmInstance, Pm, PmConfig, PmWorkspace, RecoveryAlgorithm};
use pm_sdwan::{ControllerId, NetCache, Programmability, SdWan, SdWanBuilder};
use std::hint::black_box;
use std::time::Instant;

/// Interleaved per-op medians of `fresh` vs `delta`, in nanoseconds.
///
/// Each sample times a block of 8 calls so a single scheduler hiccup
/// cannot dominate one measurement; samples alternate between the two
/// closures so slow drift (thermal, noisy neighbours) hits both sides
/// equally, and medians shrug off the remaining spikes.
fn interleaved_medians_ns(
    iters: usize,
    mut fresh: impl FnMut(),
    mut delta: impl FnMut(),
) -> (f64, f64) {
    const BLOCK: u32 = 8;
    let mut fresh_ns = Vec::with_capacity(iters);
    let mut delta_ns = Vec::with_capacity(iters);
    for _ in 0..16 {
        fresh();
        delta();
    }
    for _ in 0..iters {
        let t = Instant::now();
        for _ in 0..BLOCK {
            fresh();
        }
        fresh_ns.push(t.elapsed().as_nanos() as f64 / f64::from(BLOCK));
        let t = Instant::now();
        for _ in 0..BLOCK {
            delta();
        }
        delta_ns.push(t.elapsed().as_nanos() as f64 / f64::from(BLOCK));
    }
    fresh_ns.sort_by(f64::total_cmp);
    delta_ns.sort_by(f64::total_cmp);
    (fresh_ns[iters / 2], delta_ns[iters / 2])
}

/// Asserts the delta-vs-recompute ratio is < 1.0 and reports it.
fn assert_delta_wins(kernel: &str, fresh_ns: f64, delta_ns: f64) {
    let ratio = delta_ns / fresh_ns;
    println!("{kernel}: delta {delta_ns:.0} ns vs recompute {fresh_ns:.0} ns (ratio {ratio:.3})");
    assert!(
        ratio < 1.0,
        "{kernel}: delta path must beat recompute, got ratio {ratio:.3} \
         (delta {delta_ns:.0} ns, recompute {fresh_ns:.0} ns)"
    );
}

/// The Waxman WAN the delta kernels run on — the scale binaries' topology
/// family, sized so one bench iteration is microseconds, not seconds.
fn delta_wan() -> SdWan {
    build_wan(&WanSpec {
        nodes: 120,
        controllers: 8,
        flows: 96,
        headroom: 1.5,
        seed: 7,
    })
    .net
}

/// Kernel 1: the programmability table recompute (flat flow×switch table
/// fill), with the topology cache warm — the per-network setup cost every
/// sweep pays once.
fn bench_programmability(c: &mut Criterion) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let cache = NetCache::build(&net);
    cache.topo().warm();
    c.bench_function("kernel/programmability_recompute", |b| {
        b.iter(|| Programmability::compute_cached(black_box(&net), black_box(cache.topo())))
    });
}

/// Kernel 2: PM's phase-1 pass alone (`skip_phase2`), the dense
/// selection/pool scan at the heart of Algorithm 1.
fn bench_pm_phase1(c: &mut Criterion) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let prog = Programmability::compute(&net);
    let pm = Pm::with_config(PmConfig {
        skip_phase2: true,
        ..Default::default()
    });
    let cases: Vec<(&str, Vec<ControllerId>)> = vec![
        ("1-failure (13)", vec![ControllerId(3)]),
        ("2-failure (13,20)", vec![ControllerId(3), ControllerId(4)]),
        (
            "3-failure (5,13,20)",
            vec![ControllerId(1), ControllerId(3), ControllerId(4)],
        ),
    ];
    let mut group = c.benchmark_group("kernel/pm_phase1");
    for (label, failed) in &cases {
        let scenario = net.fail(failed).expect("valid case");
        let inst = FmssmInstance::new(&scenario, &prog);
        group.bench_with_input(BenchmarkId::from_parameter(label), &inst, |b, inst| {
            b.iter(|| pm.recover(black_box(inst)).expect("pm phase 1"))
        });
    }
    group.finish();
}

/// Kernel 3: one full sweep case (scenario build from cache, instance
/// build, all heuristics, metrics) — the unit the parallel engine fans out.
fn bench_sweep_case(c: &mut Criterion) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let opts = EvalOptions {
        skip_optimal: true,
        jobs: 1,
        ..Default::default()
    };
    let engine = SweepEngine::new(&net, opts);
    let failed = [ControllerId(3), ControllerId(4)];
    c.bench_function("kernel/sweep_case (13,20)", |b| {
        b.iter(|| engine.run_case(black_box(&failed)))
    });
}

/// Kernel 4: a single-swap scenario delta (`apply_delta_cached`) against
/// the cold cached rebuild (`fail_cached`) — the step the sweep engine
/// takes between colex-adjacent cases.
fn bench_scenario_delta(c: &mut Criterion) {
    let net = delta_wan();
    let cache = NetCache::build(&net);
    cache.topo().warm();
    let a = [ControllerId(0), ControllerId(1)];
    let b_set = [ControllerId(0), ControllerId(2)];

    // The rolling scenario toggles between the two adjacent failure sets,
    // so every timed delta op is exactly one (revived, failed) swap.
    let mut rolling = net.fail_cached(&a, &cache).expect("valid case");
    let mut at_a = true;
    let mut swap_once = || {
        let (remove, add) = if at_a {
            (ControllerId(1), ControllerId(2))
        } else {
            (ControllerId(2), ControllerId(1))
        };
        at_a = !at_a;
        rolling
            .apply_delta_cached(remove, add, &cache)
            .expect("adjacent swap is valid");
    };
    let fresh_once = || {
        black_box(
            net.fail_cached(black_box(&b_set), &cache)
                .expect("valid case"),
        );
    };

    let (fresh_ns, delta_ns) = interleaved_medians_ns(201, fresh_once, &mut swap_once);
    assert_delta_wins("kernel/scenario_delta", fresh_ns, delta_ns);

    c.bench_function("kernel/scenario_delta", |b| b.iter(&mut swap_once));
}

/// Kernel 5: patching the scenario-projected programmability table under
/// one controller swap against re-projecting it from the offline masks.
fn bench_programmability_delta(c: &mut Criterion) {
    let net = delta_wan();
    let prog = Programmability::compute(&net);
    let a = [ControllerId(0), ControllerId(1)];
    let b_set = [ControllerId(0), ControllerId(2)];
    let scenario_b = net.fail(&b_set).expect("valid case");

    let mut table = prog.scenario_table(&net.fail(&a).expect("valid case"));
    let mut at_a = true;
    let mut patch_once = || {
        let (remove, add) = if at_a {
            (ControllerId(1), ControllerId(2))
        } else {
            (ControllerId(2), ControllerId(1))
        };
        at_a = !at_a;
        table.apply_delta(&net, &prog, remove, add);
    };
    let fresh_once = || {
        black_box(prog.scenario_table(black_box(&scenario_b)));
    };

    let (fresh_ns, delta_ns) = interleaved_medians_ns(201, fresh_once, &mut patch_once);
    assert_delta_wins("kernel/programmability_delta", fresh_ns, delta_ns);

    c.bench_function("kernel/programmability_delta", |b| b.iter(&mut patch_once));
}

/// Kernel 6: PM's selection pass in a carried workspace (`recover_in`)
/// against the cold run that allocates its bitmaps from scratch — the
/// warm-start the sweep workers thread across claimed blocks.
fn bench_pm_warm_select(c: &mut Criterion) {
    let net = delta_wan();
    let prog = Programmability::compute(&net);
    let scenario = net
        .fail(&[ControllerId(0), ControllerId(1)])
        .expect("valid case");
    let inst = FmssmInstance::new(&scenario, &prog);
    let pm = Pm::new();

    let mut ws = PmWorkspace::default();
    let mut warm_once = || {
        black_box(
            pm.recover_in(black_box(&inst), &mut ws)
                .expect("pm recovers"),
        );
    };
    let cold_once = || {
        black_box(pm.recover(black_box(&inst)).expect("pm recovers"));
    };

    let (cold_ns, warm_ns) = interleaved_medians_ns(201, cold_once, &mut warm_once);
    assert_delta_wins("kernel/pm_warm_select", cold_ns, warm_ns);

    c.bench_function("kernel/pm_warm_select", |b| b.iter(&mut warm_once));
}

criterion_group!(
    benches,
    bench_programmability,
    bench_pm_phase1,
    bench_sweep_case,
    bench_scenario_delta,
    bench_programmability_delta,
    bench_pm_warm_select
);
criterion_main!(benches);
