//! Scaling behaviour of the full recovery pipeline on Waxman WANs of
//! increasing size (the paper motivates the PM heuristic with exactly this:
//! "as the network size increases, the solution space could increase
//! significantly").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_core::{FmssmInstance, Pm, RecoveryAlgorithm};
use pm_sdwan::{ControllerId, Programmability, SdWan, SdWanBuilder};
use pm_topo::builders::{waxman, WaxmanParams};
use pm_topo::NodeId;
use std::hint::black_box;

fn build_net(nodes: usize) -> SdWan {
    let g = waxman(&WaxmanParams {
        nodes,
        seed: 99,
        ..Default::default()
    })
    .expect("waxman builds");
    let ctrls = (nodes / 10).max(2);
    let mut b = SdWanBuilder::new(g);
    for c in 0..ctrls {
        b = b.controller(NodeId(c * (nodes / ctrls)), u32::MAX / 4);
    }
    let probe = b.clone().build().expect("probe builds");
    let max_load = (0..ctrls)
        .map(|c| probe.controller_load(ControllerId(c)))
        .max()
        .unwrap_or(1);
    let mut b = SdWanBuilder::new(probe.topology().clone());
    for c in 0..ctrls {
        b = b.controller(
            NodeId(c * (nodes / ctrls)),
            (max_load as f64 * 1.1) as u32 + 1,
        );
    }
    b.build().expect("sized build")
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for &nodes in &[25usize, 50, 100] {
        let net = build_net(nodes);
        let prog = Programmability::compute(&net);
        let scenario = net.fail(&[ControllerId(0)]).expect("valid failure");

        group.bench_with_input(
            BenchmarkId::new("programmability_compute", nodes),
            &net,
            |b, net| b.iter(|| Programmability::compute(black_box(net))),
        );
        group.bench_with_input(
            BenchmarkId::new("pm_end_to_end", nodes),
            &(&scenario, &prog),
            |b, (scenario, prog)| {
                b.iter(|| {
                    let inst = FmssmInstance::new(black_box(scenario), black_box(prog));
                    Pm::new().recover(&inst).expect("pm")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
