//! Ablation benchmarks for PM's design choices (called out in DESIGN.md):
//! switch-selection rule, controller-mapping rule, and phase 2.
//!
//! Criterion measures the runtime cost of each variant; the solution
//! *quality* of each variant is printed once at startup so a single
//! `cargo bench` run documents both sides of the trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_core::heuristic::{MappingRule, SelectionRule};
use pm_core::{FmssmInstance, Pm, PmConfig, RecoveryAlgorithm};
use pm_sdwan::{ControllerId, PlanMetrics, Programmability, SdWanBuilder};
use std::hint::black_box;

fn variants() -> Vec<(&'static str, PmConfig)> {
    vec![
        ("paper", PmConfig::default()),
        (
            "selection=highest_gamma",
            PmConfig {
                selection: SelectionRule::HighestGamma,
                ..Default::default()
            },
        ),
        (
            "selection=lowest_id",
            PmConfig {
                selection: SelectionRule::LowestId,
                ..Default::default()
            },
        ),
        (
            "mapping=max_capacity",
            PmConfig {
                mapping: MappingRule::MaxCapacity,
                ..Default::default()
            },
        ),
        (
            "no_phase2",
            PmConfig {
                skip_phase2: true,
                ..Default::default()
            },
        ),
        (
            "faithful_sigma",
            PmConfig {
                faithful_sigma: true,
                ..Default::default()
            },
        ),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let prog = Programmability::compute(&net);
    let scenario = net
        .fail(&[ControllerId(3), ControllerId(4)])
        .expect("headline case");
    let inst = FmssmInstance::new(&scenario, &prog);

    // Print the quality comparison once.
    println!("\nPM ablation quality on the (13,20) headline case:");
    println!(
        "{:<28} {:>6} {:>8} {:>10} {:>12}",
        "variant", "min", "total", "flows", "delay(ms)"
    );
    for (name, config) in variants() {
        let plan = Pm::with_config(config).recover(&inst).expect("pm variant");
        let m = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
        println!(
            "{:<28} {:>6} {:>8} {:>10} {:>12.1}",
            name,
            m.min_programmability_recoverable(),
            m.total_programmability,
            format!("{}/{}", m.recovered_flows, m.recoverable_flows),
            plan.total_control_delay(&scenario),
        );
    }
    println!();

    let mut group = c.benchmark_group("pm_ablation");
    for (name, config) in variants() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                Pm::with_config(*config)
                    .recover(black_box(&inst))
                    .expect("pm")
            })
        });
    }
    group.finish();
}

/// λ sensitivity: the paper (following its \[17\]) picks λ small enough that
/// the combined objective is lexicographic in (r, total). This ablation
/// shows what larger λ values cost in balance on a small instance the
/// exact solver can finish, and benches the solve time per λ.
fn bench_lambda(c: &mut Criterion) {
    use pm_core::{DelayBound, Optimal};
    use pm_topo::{builders, NodeId};
    // Capacity chosen tight (just above each controller's own load) so λ
    // actually trades balance against total programmability.
    let probe = SdWanBuilder::new(builders::grid(3, 3))
        .controller(NodeId(0), 10_000)
        .controller(NodeId(8), 10_000)
        .build()
        .expect("grid builds");
    let cap = (0..2)
        .map(|c| probe.controller_load(ControllerId(c)))
        .max()
        .unwrap()
        + 10;
    let net = SdWanBuilder::new(probe.topology().clone())
        .controller(NodeId(0), cap)
        .controller(NodeId(8), cap)
        .build()
        .expect("sized grid builds");
    let prog = Programmability::compute(&net);
    let scenario = net.fail(&[ControllerId(0)]).expect("valid failure");
    let inst = FmssmInstance::new(&scenario, &prog);

    println!("\nλ ablation on a 3×3 grid (single failure, exact solve):");
    println!(
        "{:<14} {:>6} {:>8} {:>8}",
        "lambda", "min", "total", "proved"
    );
    let lexicographic = inst.lambda();
    for (name, lambda) in [
        ("0 (r only)", 0.0),
        ("paper (lex)", lexicographic),
        ("0.01", 0.01),
        ("1.0", 1.0),
    ] {
        let out = Optimal::new()
            .lambda(lambda)
            .delay_bound(DelayBound::Unbounded)
            .time_limit(std::time::Duration::from_secs(10))
            .solve_detailed(&inst)
            .expect("solvable");
        let m = PlanMetrics::compute(&scenario, &prog, &out.plan, 0.0);
        println!(
            "{:<14} {:>6} {:>8} {:>8}",
            name,
            m.min_programmability_recoverable(),
            m.total_programmability,
            out.proved_optimal()
        );
    }
    println!();

    let mut group = c.benchmark_group("lambda_ablation");
    group.sample_size(10);
    for (name, lambda) in [("lex", lexicographic), ("one", 1.0)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &lambda, |b, &lambda| {
            b.iter(|| {
                Optimal::new()
                    .lambda(lambda)
                    .delay_bound(DelayBound::Unbounded)
                    .time_limit(std::time::Duration::from_secs(10))
                    .solve_detailed(black_box(&inst))
                    .expect("solvable")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation, bench_lambda);
criterion_main!(benches);
