//! Criterion micro-benchmarks of the MILP substrate: LP relaxations and
//! full branch-and-bound solves, including the FMSSM root relaxation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_milp::{MilpSolver, Model, Sense, SimplexOptions, VarKind};
use std::hint::black_box;

/// A dense random-ish LP: maximize Σx subject to row sums, deterministic
/// coefficients (no RNG needed).
fn make_lp(vars: usize, rows: usize) -> Model {
    let mut m = Model::new();
    let xs: Vec<_> = (0..vars)
        .map(|i| m.add_var(format!("x{i}"), VarKind::Continuous { lb: 0.0, ub: 10.0 }))
        .collect();
    for r in 0..rows {
        let terms: Vec<_> = xs
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + ((i * 7 + r * 13) % 5) as f64))
            .collect();
        m.add_constraint(terms, Sense::Le, (vars * 2) as f64);
    }
    m.maximize(xs.iter().map(|&v| (v, 1.0)));
    m
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_lp");
    for &(vars, rows) in &[(20usize, 10usize), (100, 50), (400, 100)] {
        let model = make_lp(vars, rows);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vars}v_{rows}c")),
            &model,
            |b, model| {
                b.iter(|| {
                    pm_milp::simplex::solve_relaxation(black_box(model), &SimplexOptions::default())
                })
            },
        );
    }
    group.finish();
}

/// A correlated 0/1 knapsack that forces real branching.
fn make_knapsack(items: usize) -> Model {
    let mut m = Model::new();
    let xs: Vec<_> = (0..items).map(|i| m.add_binary(format!("x{i}"))).collect();
    let weights: Vec<f64> = (0..items).map(|i| 7.0 + ((i * 13) % 11) as f64).collect();
    m.add_constraint(
        xs.iter().zip(&weights).map(|(&v, &w)| (v, w)),
        Sense::Le,
        weights.iter().sum::<f64>() * 0.4,
    );
    m.maximize(xs.iter().zip(&weights).map(|(&v, &w)| (v, w + 0.1)));
    m
}

fn bench_bnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_and_bound");
    group.sample_size(10);
    for &items in &[10usize, 16] {
        let model = make_knapsack(items);
        group.bench_with_input(BenchmarkId::from_parameter(items), &model, |b, model| {
            b.iter(|| MilpSolver::new().solve(black_box(model)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp, bench_bnb);
criterion_main!(benches);
