//! Criterion micro-benchmarks of the recovery algorithms on the paper's
//! evaluation network (supports Fig. 7's computation-time comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_core::{FmssmInstance, Pg, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{ControllerId, Programmability, SdWanBuilder};
use std::hint::black_box;

fn bench_recovery(c: &mut Criterion) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let prog = Programmability::compute(&net);
    // One representative case per failure count, including the headline
    // (13, 20) two-failure case.
    let cases: Vec<(&str, Vec<ControllerId>)> = vec![
        ("1-failure (13)", vec![ControllerId(3)]),
        ("2-failure (13,20)", vec![ControllerId(3), ControllerId(4)]),
        (
            "3-failure (5,13,20)",
            vec![ControllerId(1), ControllerId(3), ControllerId(4)],
        ),
    ];

    let mut group = c.benchmark_group("recovery");
    for (label, failed) in &cases {
        let scenario = net.fail(failed).expect("valid case");
        let inst = FmssmInstance::new(&scenario, &prog);
        group.bench_with_input(BenchmarkId::new("PM", label), &inst, |b, inst| {
            b.iter(|| Pm::new().recover(black_box(inst)).expect("pm"))
        });
        group.bench_with_input(BenchmarkId::new("RetroFlow", label), &inst, |b, inst| {
            b.iter(|| {
                RetroFlow::new()
                    .recover(black_box(inst))
                    .expect("retroflow")
            })
        });
        group.bench_with_input(BenchmarkId::new("PG", label), &inst, |b, inst| {
            b.iter(|| Pg::new().recover(black_box(inst)).expect("pg"))
        });
    }
    group.finish();
}

fn bench_instance_build(c: &mut Criterion) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let prog = Programmability::compute(&net);
    let scenario = net
        .fail(&[ControllerId(3), ControllerId(4)])
        .expect("valid case");
    c.bench_function("fmssm_instance_build", |b| {
        b.iter(|| FmssmInstance::new(black_box(&scenario), black_box(&prog)))
    });
}

criterion_group!(benches, bench_recovery, bench_instance_build);
criterion_main!(benches);
