//! Criterion micro-benchmarks of the graph substrate on the evaluation
//! topology: shortest paths, loop-free path counting, programmability
//! precomputation and network construction.

use criterion::{criterion_group, criterion_main, Criterion};
use pm_sdwan::{Programmability, SdWanBuilder};
use pm_topo::paths::{all_pairs, dijkstra, PathCounts};
use pm_topo::{att, NodeId};
use std::hint::black_box;

fn bench_paths(c: &mut Criterion) {
    let g = att::att_backbone();
    c.bench_function("dijkstra_att", |b| {
        b.iter(|| dijkstra(black_box(&g), NodeId(13)))
    });
    c.bench_function("all_pairs_att", |b| b.iter(|| all_pairs(black_box(&g))));
    c.bench_function("path_counts_att", |b| {
        b.iter(|| PathCounts::toward(black_box(&g), NodeId(13)))
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("att_paper_network_build", |b| {
        b.iter(|| SdWanBuilder::att_paper_setup().build().expect("builds"))
    });
    let net = SdWanBuilder::att_paper_setup().build().expect("builds");
    c.bench_function("programmability_compute_600_flows", |b| {
        b.iter(|| Programmability::compute(black_box(&net)))
    });
}

criterion_group!(benches, bench_paths, bench_network);
criterion_main!(benches);
