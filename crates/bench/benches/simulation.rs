//! Criterion benchmarks of the discrete-event control-plane simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use pm_core::{FmssmInstance, Pm, RecoveryAlgorithm};
use pm_sdwan::{ControllerId, FlowId, Programmability, SdWanBuilder};
use pm_simctl::{RecoveryTiming, SimTime, Simulation};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let prog = Programmability::compute(&net);
    let failed = [ControllerId(3), ControllerId(4)];
    let scenario = net.fail(&failed).expect("valid failure");
    let inst = FmssmInstance::new(&scenario, &prog);
    let plan = Pm::new().recover(&inst).expect("pm");

    c.bench_function("sim_setup_600_flows", |b| {
        b.iter(|| Simulation::new(black_box(&net)))
    });

    c.bench_function("sim_full_recovery_headline_case", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(&net);
            sim.schedule_failure(SimTime::from_ms(0.0), &failed);
            sim.schedule_recovery(
                SimTime::from_ms(10.0),
                &scenario,
                &plan,
                RecoveryTiming::default(),
            );
            sim.run(SimTime::from_ms(600_000.0)).expect("runs")
        })
    });

    c.bench_function("sim_mass_expiry_200_flows", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(&net);
            for l in 0..200 {
                sim.schedule_flow_expiry(SimTime::from_ms(10.0), FlowId(l));
            }
            sim.run(SimTime::from_ms(600_000.0)).expect("runs")
        })
    });

    c.bench_function("sim_walk_all_flows", |b| {
        let sim = Simulation::new(&net);
        b.iter(|| {
            for l in 0..net.flows().len() {
                let _ = black_box(sim.walk_flow(FlowId(l)).expect("deliverable"));
            }
        })
    });
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
