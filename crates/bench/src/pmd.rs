//! `pmd`, the resident recovery service (ROADMAP item 1): serves
//! precomputed recovery plans over HTTP so observing a failure set costs
//! a lookup, not a solve.
//!
//! A [`PmdService`] owns one [`Generation`] at a time — a topology, its
//! [`NetCache`], and the [`PlanStore`] of every `f ≤ horizon` plan —
//! behind an `Arc` swap: request handlers clone the current `Arc` under a
//! read lock and answer entirely from that snapshot, so every response is
//! internally consistent with exactly one topology generation however
//! reloads interleave. `POST /reload` builds the next generation *outside*
//! the lock (requests keep serving from the old one) and swaps it in with
//! one short write-lock.
//!
//! Routes, on top of [`pm_obs::Router::with_metrics_routes`]:
//!
//! | route               | behaviour                                      |
//! |---------------------|------------------------------------------------|
//! | `POST /plan`        | JSON failure set → plan (store hit or solve)   |
//! | `GET /plans/:rank`  | plan by global store rank                      |
//! | `GET /status.json`  | generation, store shape, serving counters      |
//! | `POST /reload`      | rebuild the generation, bump its id, swap      |
//! | `POST /shutdown`    | ask the host process to exit cleanly           |
//!
//! `POST /plan` accepts `{"fail": [13, 20]}` (controller *node* ids, the
//! paper's convention and `pmctl --fail`'s) or `{"controllers": [1, 4]}`
//! (controller indices, what [`crate::ScenarioSpace`] ranks). A failure
//! set beyond the precomputed horizon is answered by an on-demand solve
//! that reuses the generation's [`NetCache`] and a thread-warm PM
//! workspace — byte-identical to a cold solve, just not free — and is
//! marked `"source": "solved"` in the response.
//!
//! The process hosting the service decides when to exit: handlers can
//! only *request* shutdown ([`PmdService::wait_for_shutdown`] unblocks).
//! With every crate `#![forbid(unsafe_code)]` there is no signal API, so
//! `POST /shutdown` *is* the daemon's termination signal.

use crate::harness::EvalOptions;
use crate::par::SweepEngine;
use crate::plan_store::{PlanStore, StoredPlan};
use pm_core::{FmssmInstance, Pm, PmWorkspace, RecoveryAlgorithm};
use pm_obs::{json, MetricsServer, Request, Response, Router, ServeConfig};
use pm_sdwan::{ControllerId, NetCache, PlanMetrics, SdWan};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Store and pool sizing for a [`PmdService`].
#[derive(Debug, Clone, Copy)]
pub struct PmdConfig {
    /// Precompute every failure set of up to this many controllers.
    pub horizon: usize,
    /// Worker threads of the offline store build.
    pub jobs: usize,
    /// Scenario batch size of the store build (see [`EvalOptions::batch`]).
    pub batch: usize,
    /// HTTP worker threads serving requests.
    pub workers: usize,
}

impl Default for PmdConfig {
    fn default() -> Self {
        PmdConfig {
            horizon: 2,
            jobs: crate::par::default_jobs(),
            batch: 32,
            workers: 8,
        }
    }
}

/// One immutable serving snapshot: a topology, its caches, and the plan
/// store built from it. Swapped wholesale on reload.
#[derive(Debug)]
pub struct Generation {
    id: u64,
    net: SdWan,
    cache: NetCache,
    store: PlanStore,
}

thread_local! {
    /// Thread-warm PM buffers for beyond-horizon solves: each HTTP worker
    /// carries its workspace from request to request, the warm-start
    /// half of the incremental contract (plans are byte-identical to a
    /// cold solve either way — buffers survive, never decisions).
    static FALLBACK_WS: RefCell<PmWorkspace> = RefCell::new(PmWorkspace::default());
}

impl Generation {
    /// Builds generation `id` from `net`: caches the network once, then
    /// solves the full `f ≤ horizon` store on `cfg.jobs` workers via the
    /// sweep engine's delta/warm-start path.
    pub fn build(id: u64, net: SdWan, cfg: &PmdConfig) -> Generation {
        let _span = pm_obs::span("pmd.generation.build");
        let store = {
            let engine = SweepEngine::new(
                &net,
                EvalOptions {
                    skip_optimal: true,
                    jobs: cfg.jobs,
                    batch: cfg.batch,
                    ..Default::default()
                },
            );
            PlanStore::build(&engine, cfg.horizon)
        };
        let cache = NetCache::build(&net);
        Generation {
            id,
            net,
            cache,
            store,
        }
    }

    /// The generation counter stamped on every response served from it.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The topology this generation serves.
    pub fn net(&self) -> &SdWan {
        &self.net
    }

    /// The precomputed plan store.
    pub fn store(&self) -> &PlanStore {
        &self.store
    }

    /// Solves a failure set beyond the precomputed horizon on demand,
    /// reusing the generation's [`NetCache`] and the calling thread's
    /// warm PM workspace. Byte-identical to a cold solve.
    ///
    /// # Errors
    ///
    /// Returns the scenario construction error for sets the network
    /// rejects (e.g. every controller failed).
    pub fn solve_beyond_horizon(&self, failed: &[ControllerId]) -> Result<StoredPlan, String> {
        let _span = pm_obs::span("pmd.fallback_solve");
        let scenario = self
            .net
            .fail_cached(failed, &self.cache)
            .map_err(|e| e.to_string())?;
        let prog = self.cache.programmability();
        let inst = FmssmInstance::with_cache(&scenario, prog, &self.cache);
        let pm = Pm::new();
        let t0 = std::time::Instant::now();
        let plan = FALLBACK_WS
            .with(|ws| pm.recover_in(&inst, &mut ws.borrow_mut()))
            .map_err(|e| e.to_string())?;
        let elapsed = t0.elapsed();
        plan.validate(&scenario, prog, pm.is_flow_level())
            .map_err(|e| e.to_string())?;
        let metrics = PlanMetrics::compute(&scenario, prog, &plan, pm.middle_layer_ms());
        Ok(StoredPlan {
            rank: u64::MAX, // no global rank: not in the store
            failed: failed.to_vec(),
            label: crate::harness::case_label(&self.net, failed),
            plan_text: plan.to_text(),
            min_programmability: metrics.min_programmability,
            total_programmability: metrics.total_programmability,
            recovered_flows: metrics.recovered_flows,
            offline_flows: metrics.offline_flows,
            recovered_switches: metrics.recovered_switches,
            offline_switches: metrics.offline_switches,
            solve_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        })
    }
}

/// Builds the next [`Generation`]: called once at startup with id 1 and
/// once per `POST /reload` with the next id. The closure re-reads
/// whatever its topology source is (a GraphML file on disk, a builder),
/// which is what makes reload a *hot topology swap*.
pub type GenerationSource = Box<dyn Fn(u64) -> Result<Generation, String> + Send + Sync>;

struct PmdShared {
    current: RwLock<Arc<Generation>>,
    source: GenerationSource,
    /// Serializes reloads so concurrent `POST /reload`s build one
    /// generation each, in id order, never interleaved.
    reload: Mutex<()>,
    next_id: AtomicU64,
    store_hits: AtomicU64,
    solved: AtomicU64,
    rejected: AtomicU64,
    reloads: AtomicU64,
    stop: Mutex<bool>,
    stop_cv: Condvar,
}

impl PmdShared {
    fn snapshot(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read().expect("generation lock"))
    }

    fn request_shutdown(&self) {
        *self.stop.lock().expect("stop lock") = true;
        self.stop_cv.notify_all();
    }
}

/// A running `pmd` instance: the HTTP listener plus the generation swap
/// it serves from. Dropping it closes the listener.
pub struct PmdService {
    server: MetricsServer,
    shared: Arc<PmdShared>,
}

impl std::fmt::Debug for PmdService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmdService")
            .field("addr", &self.server.local_addr())
            .field("generation", &self.shared.snapshot().id())
            .finish()
    }
}

impl PmdService {
    /// Builds generation 1 from `source`, binds `addr` and starts
    /// serving on `config.workers` HTTP workers.
    ///
    /// # Errors
    ///
    /// Returns the generation build error or the bind error, as text.
    pub fn start(
        addr: impl ToSocketAddrs,
        source: GenerationSource,
        config: PmdConfig,
    ) -> Result<PmdService, String> {
        let first = source(1)?;
        let shared = Arc::new(PmdShared {
            current: RwLock::new(Arc::new(first)),
            source,
            reload: Mutex::new(()),
            next_id: AtomicU64::new(2),
            store_hits: AtomicU64::new(0),
            solved: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            stop: Mutex::new(false),
            stop_cv: Condvar::new(),
        });
        let router = build_router(&shared);
        let server = MetricsServer::serve_routed(
            addr,
            router,
            ServeConfig {
                workers: config.workers.max(1),
                keep_alive: true,
            },
        )
        .map_err(|e| e.to_string())?;
        Ok(PmdService { server, shared })
    }

    /// The bound address (resolves an ephemeral `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The current serving snapshot.
    pub fn generation(&self) -> Arc<Generation> {
        self.shared.snapshot()
    }

    /// Plans answered from the store / by on-demand solve so far.
    pub fn served(&self) -> (u64, u64) {
        (
            self.shared.store_hits.load(Ordering::Relaxed),
            self.shared.solved.load(Ordering::Relaxed),
        )
    }

    /// Whether `POST /shutdown` has been received.
    pub fn shutdown_requested(&self) -> bool {
        *self.shared.stop.lock().expect("stop lock")
    }

    /// Blocks the calling thread until `POST /shutdown` arrives.
    pub fn wait_for_shutdown(&self) {
        let mut stopped = self.shared.stop.lock().expect("stop lock");
        while !*stopped {
            stopped = self.shared.stop_cv.wait(stopped).expect("stop lock");
        }
    }
}

fn build_router(shared: &Arc<PmdShared>) -> Router {
    let mut r = Router::with_metrics_routes();
    let s = Arc::clone(shared);
    r.post("/plan", move |req| handle_plan(&s, req));
    let s = Arc::clone(shared);
    r.get("/plans/:rank", move |req| handle_plan_rank(&s, req));
    let s = Arc::clone(shared);
    r.get("/status.json", move |_| status_json(&s));
    let s = Arc::clone(shared);
    r.post("/reload", move |_| handle_reload(&s));
    let s = Arc::clone(shared);
    r.post("/shutdown", move |_| {
        s.request_shutdown();
        Response::json(200, "{\"stopping\": true}\n")
    });
    r
}

/// Parses the `POST /plan` body into controller indices of `gen`'s
/// topology: `{"fail": [node ids]}` or `{"controllers": [indices]}`.
fn parse_plan_body(gen: &Generation, body: &str) -> Result<Vec<ControllerId>, String> {
    let value = json::parse(body).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let fail = value.get("fail");
    let controllers = value.get("controllers");
    let (key, list) = match (fail, controllers) {
        (Some(v), None) => ("fail", v),
        (None, Some(v)) => ("controllers", v),
        (Some(_), Some(_)) => {
            return Err("give either \"fail\" or \"controllers\", not both".into())
        }
        (None, None) => {
            return Err(
                "body must carry a \"fail\" (node ids) or \"controllers\" (indices) array".into(),
            )
        }
    };
    let items = list
        .items()
        .ok_or_else(|| format!("\"{key}\" must be an array of integers"))?;
    if items.is_empty() {
        return Err(format!("\"{key}\" must name at least one controller"));
    }
    let n = gen.net().controllers().len();
    let mut failed = Vec::with_capacity(items.len());
    for item in items {
        let id = item
            .as_u64()
            .ok_or_else(|| format!("\"{key}\" must be an array of non-negative integers"))?;
        let idx = match key {
            "controllers" => {
                let idx = usize::try_from(id).unwrap_or(usize::MAX);
                if idx >= n {
                    return Err(format!("controller index {id} out of range (have {n})"));
                }
                idx
            }
            _ => gen
                .net()
                .controllers()
                .iter()
                .position(|c| c.node.index() as u64 == id)
                .ok_or_else(|| {
                    let sites: Vec<usize> = gen
                        .net()
                        .controllers()
                        .iter()
                        .map(|c| c.node.index())
                        .collect();
                    format!("no controller at node {id}; controllers sit at {sites:?}")
                })?,
        };
        failed.push(ControllerId(idx));
    }
    failed.sort_unstable();
    let before = failed.len();
    failed.dedup();
    if failed.len() != before {
        return Err("failure set names a controller twice".into());
    }
    if failed.len() >= n {
        return Err("cannot fail every controller".into());
    }
    Ok(failed)
}

fn handle_plan(shared: &PmdShared, req: &Request) -> Response {
    let gen = shared.snapshot();
    let Some(body) = req.body_str() else {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::json_error(400, "body must be UTF-8 JSON");
    };
    let failed = match parse_plan_body(&gen, body) {
        Ok(f) => f,
        Err(e) => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Response::json_error(400, &e);
        }
    };
    match gen.store().lookup(&failed) {
        Some(entry) => {
            shared.store_hits.fetch_add(1, Ordering::Relaxed);
            if pm_obs::enabled() {
                pm_obs::count("pmd.plan.store_hits", 1);
            }
            Response::json(200, plan_json(&gen, entry, "store"))
        }
        None => match gen.solve_beyond_horizon(&failed) {
            Ok(entry) => {
                shared.solved.fetch_add(1, Ordering::Relaxed);
                if pm_obs::enabled() {
                    pm_obs::count("pmd.plan.solved", 1);
                }
                Response::json(200, plan_json(&gen, &entry, "solved"))
            }
            Err(e) => {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                Response::json_error(400, &e)
            }
        },
    }
}

fn handle_plan_rank(shared: &PmdShared, req: &Request) -> Response {
    let gen = shared.snapshot();
    let raw = req.param("rank").unwrap_or("");
    let Ok(rank) = raw.parse::<u64>() else {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::json_error(
            400,
            &format!("rank must be a non-negative integer, got {raw}"),
        );
    };
    match gen.store().get(rank) {
        Some(entry) => {
            shared.store_hits.fetch_add(1, Ordering::Relaxed);
            if pm_obs::enabled() {
                pm_obs::count("pmd.plan.store_hits", 1);
            }
            Response::json(200, plan_json(&gen, entry, "store"))
        }
        None => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            Response::json_error(
                404,
                &format!("rank {rank} beyond the store (have {})", gen.store().len()),
            )
        }
    }
}

fn handle_reload(shared: &PmdShared) -> Response {
    // One reload at a time; requests keep serving the old generation
    // while the next one builds outside the generation lock.
    let _serialized = shared.reload.lock().expect("reload lock");
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    match (shared.source)(id) {
        Ok(gen) => {
            let body = format!(
                "{{\n  \"generation\": {},\n  \"plans\": {},\n  \"horizon\": {},\n  \"controllers\": {}\n}}\n",
                gen.id(),
                gen.store().len(),
                gen.store().horizon(),
                gen.net().controllers().len(),
            );
            *shared.current.write().expect("generation lock") = Arc::new(gen);
            shared.reloads.fetch_add(1, Ordering::Relaxed);
            if pm_obs::enabled() {
                pm_obs::count("pmd.reloads", 1);
            }
            Response::json(200, body)
        }
        Err(e) => Response::json_error(500, &format!("reload failed: {e}")),
    }
}

/// The `/plan` and `/plans/:rank` response body. Every field comes from
/// one generation snapshot, so the response can never mix topologies.
fn plan_json(gen: &Generation, entry: &StoredPlan, source: &str) -> String {
    let mut out = String::with_capacity(entry.plan_text.len() + 512);
    out.push_str("{\n  \"schema_version\": 1,\n");
    let _ = writeln!(out, "  \"generation\": {},", gen.id());
    let _ = writeln!(out, "  \"source\": \"{source}\",");
    match source {
        "store" => {
            let _ = writeln!(out, "  \"rank\": {},", entry.rank);
        }
        _ => out.push_str("  \"rank\": null,\n"),
    }
    let ids: Vec<String> = entry.failed.iter().map(|c| c.index().to_string()).collect();
    let _ = writeln!(out, "  \"controllers\": [{}],", ids.join(", "));
    let _ = writeln!(out, "  \"label\": \"{}\",", json::escape(&entry.label));
    let _ = writeln!(
        out,
        "  \"min_programmability\": {},",
        entry.min_programmability
    );
    let _ = writeln!(
        out,
        "  \"total_programmability\": {},",
        entry.total_programmability
    );
    let _ = writeln!(out, "  \"recovered_flows\": {},", entry.recovered_flows);
    let _ = writeln!(out, "  \"offline_flows\": {},", entry.offline_flows);
    let _ = writeln!(
        out,
        "  \"recovered_switches\": {},",
        entry.recovered_switches
    );
    let _ = writeln!(out, "  \"offline_switches\": {},", entry.offline_switches);
    let _ = writeln!(
        out,
        "  \"store\": {{\"plans\": {}, \"horizon\": {}, \"controllers\": {}}},",
        gen.store().len(),
        gen.store().horizon(),
        gen.net().controllers().len(),
    );
    let _ = writeln!(out, "  \"plan\": \"{}\"", json::escape(&entry.plan_text));
    out.push_str("}\n");
    out
}

fn status_json(shared: &PmdShared) -> Response {
    let gen = shared.snapshot();
    let mut out = String::with_capacity(256);
    out.push_str("{\n  \"schema_version\": 1,\n");
    let _ = writeln!(out, "  \"generation\": {},", gen.id());
    let _ = writeln!(out, "  \"plans\": {},", gen.store().len());
    let _ = writeln!(out, "  \"horizon\": {},", gen.store().horizon());
    let _ = writeln!(out, "  \"controllers\": {},", gen.net().controllers().len());
    let _ = writeln!(
        out,
        "  \"store_build_ms\": {:.3},",
        gen.store().build_elapsed().as_secs_f64() * 1e3
    );
    let _ = writeln!(
        out,
        "  \"served\": {{\"store\": {}, \"solved\": {}, \"rejected\": {}}},",
        shared.store_hits.load(Ordering::Relaxed),
        shared.solved.load(Ordering::Relaxed),
        shared.rejected.load(Ordering::Relaxed),
    );
    let _ = writeln!(
        out,
        "  \"reloads\": {}",
        shared.reloads.load(Ordering::Relaxed)
    );
    out.push_str("}\n");
    Response::json(200, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_sdwan::SdWanBuilder;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    use std::time::Duration;

    fn att_source(cfg: PmdConfig) -> GenerationSource {
        Box::new(move |id| {
            let net = SdWanBuilder::att_paper_setup()
                .build()
                .map_err(|e| e.to_string())?;
            Ok(Generation::build(id, net, &cfg))
        })
    }

    fn service() -> PmdService {
        let cfg = PmdConfig {
            horizon: 2,
            jobs: 2,
            workers: 2,
            ..Default::default()
        };
        PmdService::start("127.0.0.1:0", att_source(cfg), cfg).expect("start")
    }

    fn request(addr: SocketAddr, raw: &str) -> (String, json::Value) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
        let status = head.lines().next().unwrap_or("").to_string();
        let value = json::parse(body).unwrap_or(json::Value::Null);
        (status, value)
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (String, json::Value) {
        request(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    fn get(addr: SocketAddr, path: &str) -> (String, json::Value) {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    #[test]
    fn serves_store_hits_fallback_solves_and_rank_lookups() {
        let svc = service();
        let addr = svc.local_addr();
        let gen = svc.generation();

        // A node-id failure set within the horizon: served from the store.
        let label = gen.store().get(0).unwrap().label.clone();
        let node: u64 = label
            .trim_matches(|c| c == '(' || c == ')')
            .parse()
            .expect("single-failure label is one node id");
        let (status, v) = post(addr, "/plan", &format!("{{\"fail\": [{node}]}}"));
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(v.get("source").and_then(|s| s.as_str()), Some("store"));
        assert_eq!(v.get("rank").and_then(json::Value::as_u64), Some(0));

        // Controller indices address the same store.
        let (status, v) = post(addr, "/plan", "{\"controllers\": [1, 4]}");
        assert_eq!(status, "HTTP/1.1 200 OK");
        let rank = v.get("rank").and_then(json::Value::as_u64).expect("ranked");
        let (status, by_rank) = get(addr, &format!("/plans/{rank}"));
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(
            by_rank.get("plan").and_then(|p| p.as_str()),
            v.get("plan").and_then(|p| p.as_str()),
        );

        // Beyond the horizon (3 > 2): solved on demand, no rank, and the
        // plan equals what the store-path solver would produce cold.
        let (status, v) = post(addr, "/plan", "{\"controllers\": [0, 2, 5]}");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(v.get("source").and_then(|s| s.as_str()), Some("solved"));
        assert!(matches!(v.get("rank"), Some(json::Value::Null)));
        let (hits, solved) = svc.served();
        assert_eq!((hits, solved), (3, 1));

        // Bad requests: malformed JSON, unknown node, duplicate, empty,
        // everything-failed, bad rank — all 400/404 JSON errors.
        for (path, body, want) in [
            ("/plan", "{not json", "400"),
            ("/plan", "{\"fail\": [9999]}", "400"),
            ("/plan", "{\"controllers\": [1, 1]}", "400"),
            ("/plan", "{\"fail\": []}", "400"),
            ("/plan", "{\"controllers\": [0,1,2,3,4,5]}", "400"),
            ("/plan", "{}", "400"),
        ] {
            let (status, v) = post(addr, path, body);
            assert!(status.contains(want), "{path} {body}: {status}");
            assert!(v.get("error").is_some(), "{path} {body} carries an error");
        }
        let (status, v) = get(addr, "/plans/100000");
        assert!(status.contains("404"), "{status}");
        assert!(v.get("error").is_some());
    }

    #[test]
    fn reload_swaps_the_generation_and_bumps_its_id() {
        let svc = service();
        let addr = svc.local_addr();
        assert_eq!(svc.generation().id(), 1);
        let (status, v) = post(addr, "/reload", "");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(v.get("generation").and_then(json::Value::as_u64), Some(2));
        assert_eq!(svc.generation().id(), 2);
        // Responses now stamp the new generation.
        let (_, v) = get(addr, "/plans/0");
        assert_eq!(v.get("generation").and_then(json::Value::as_u64), Some(2));
        let (_, v) = get(addr, "/status.json");
        assert_eq!(v.get("reloads").and_then(json::Value::as_u64), Some(1));
    }

    #[test]
    fn shutdown_endpoint_unblocks_the_waiter() {
        let svc = service();
        let addr = svc.local_addr();
        assert!(!svc.shutdown_requested());
        let (status, _) = post(addr, "/shutdown", "");
        assert_eq!(status, "HTTP/1.1 200 OK");
        svc.wait_for_shutdown(); // must not hang
        assert!(svc.shutdown_requested());
    }
}
