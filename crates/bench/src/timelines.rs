//! Sweeps over seeded failure timelines, driven by the [`SweepEngine`].
//!
//! A [`pm_simctl::TimelineSpace`] indexes event schedules by integer id
//! exactly like [`crate::ScenarioSpace`] indexes failure subsets by colex
//! rank, so the whole selection machinery composes unchanged:
//! [`TimelineSelection`] applies `--max-scenarios` Floyd sampling and
//! `--shard i/m` contiguous slicing over timeline ids, and
//! [`SweepEngine::sweep_timelines`] streams the selected ids through the
//! batch-claiming worker pool ([`crate::par::stream_indexed`]). Replay
//! results merge in id order, so output is byte-identical across job
//! counts and m shards concatenated in shard order reassemble the
//! unsharded run.

use crate::harness::EvalOptions;
use crate::par::{stream_indexed, SweepEngine};
use crate::scenario_space::{floyd_sample, slice_range};
use pm_simctl::{TimelineParams, TimelineReport, TimelineSpace};
use std::fmt::Write as _;
use std::ops::Range;

/// Which timelines of a [`TimelineSpace`] a sweep executes: either the
/// exhaustive id range or a seeded sample of it, in ascending id order
/// either way — the timeline analogue of [`crate::ScenarioSelection`].
#[derive(Debug, Clone)]
pub struct TimelineSelection {
    count: u64,
    /// Sampled ids in ascending order; `None` means exhaustive.
    ids: Option<Vec<u64>>,
}

impl TimelineSelection {
    /// Selects every timeline of a space with `count` ids.
    pub fn exhaustive(count: u64) -> Self {
        TimelineSelection { count, ids: None }
    }

    /// Selects at most `max` timeline ids, drawn without replacement by
    /// the same seeded Floyd sampler the scenario selection uses. Budgets
    /// covering the space fall back to the exhaustive range.
    pub fn sampled(count: u64, max: u64, seed: u64) -> Self {
        if max >= count {
            return TimelineSelection::exhaustive(count);
        }
        TimelineSelection {
            count,
            ids: Some(floyd_sample(count, max, seed)),
        }
    }

    /// `true` when this is a strict subsample of the space.
    pub fn is_sampled(&self) -> bool {
        self.ids.is_some()
    }

    /// How many timelines the selection contains.
    pub fn len(&self) -> u64 {
        match &self.ids {
            Some(ids) => ids.len() as u64,
            None => self.count,
        }
    }

    /// `true` when the selection contains no timelines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The timeline id executed at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    pub fn id_at(&self, pos: u64) -> u64 {
        match &self.ids {
            Some(ids) => ids[usize::try_from(pos).expect("position fits usize")],
            None => {
                assert!(pos < self.count, "position {pos} out of range");
                pos
            }
        }
    }

    /// The position range shard `i` of `m` executes (1-based, the
    /// `--shard i/m` convention); `None` means the whole selection. Same
    /// contiguous-partition contract as
    /// [`crate::ScenarioSelection::shard_range`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is not in `1..=m` or `m == 0`.
    pub fn shard_range(&self, shard: Option<(usize, usize)>) -> Range<u64> {
        slice_range(self.len(), shard)
    }
}

impl SweepEngine<'_> {
    /// The timeline space a `--timelines count` sweep of this engine
    /// replays: `count` seeded schedules over this network's controllers
    /// and flows, derived from [`EvalOptions::seed`].
    ///
    /// # Panics
    ///
    /// Panics if the network has fewer than two controllers.
    pub fn timeline_space(&self, count: u64, params: TimelineParams) -> TimelineSpace {
        TimelineSpace::new(
            self.network().controllers().len(),
            self.network().flows().len(),
            self.options().seed,
            count,
            params,
        )
    }

    /// The timeline selection a sweep over `space` executes: the full id
    /// range, cut down to [`EvalOptions::max_scenarios`] by seeded
    /// sampling when set.
    pub fn timeline_selection(&self, space: &TimelineSpace) -> TimelineSelection {
        match self.options().max_scenarios {
            Some(max) => TimelineSelection::sampled(space.count(), max, self.options().seed),
            None => TimelineSelection::exhaustive(space.count()),
        }
    }

    /// Replays the timelines of `sel` this engine's shard covers,
    /// streaming ids through the worker pool in position order against
    /// the engine's shared read-only [`pm_sdwan::NetCache`].
    ///
    /// Reports merge in position order — byte-identical across job
    /// counts, and m shards concatenated in shard order byte-identical to
    /// the unsharded run. The `sim.sweep.live_peak` counter records the
    /// in-flight high-water mark (bounded by `jobs × batch`).
    ///
    /// # Panics
    ///
    /// Panics if a generated timeline fails to replay — generation
    /// guarantees well-formed failure sets, so this indicates a bug.
    pub fn sweep_timelines(
        &self,
        space: &TimelineSpace,
        sel: &TimelineSelection,
    ) -> Vec<TimelineReport> {
        if pm_obs::enabled() {
            pm_obs::count_max("sim.sweep.space_size", space.count());
            pm_obs::count_max("sim.sweep.selected", sel.len());
            if sel.is_sampled() {
                pm_obs::count("sim.sweep.sampled_sweeps", 1);
            }
        }
        let range = sel.shard_range(self.options().shard);
        let (net, cache) = (self.network(), self.cache());
        stream_indexed(
            range,
            self.options().jobs,
            self.options().batch,
            "sim.sweep",
            |pos| {
                let id = sel.id_at(pos);
                space
                    .generate(id)
                    .replay(net, cache)
                    .expect("generated timelines always replay")
            },
        )
    }
}

/// Column headers of the deterministic per-timeline output table —
/// aggregate replay outcomes only, no wall-clock values, so shard
/// outputs concatenate byte-identically.
pub const TIMELINE_CASE_HEADERS: [&str; 12] = [
    "timeline",
    "events",
    "solves",
    "failures",
    "cascades",
    "partitions",
    "recoveries",
    "churns",
    "peak_failed",
    "fully_recovered",
    "baseline_restored",
    "pm_worst_recovered_ppm",
];

/// One deterministic output row per replayed timeline, matching
/// [`TIMELINE_CASE_HEADERS`].
pub fn timeline_rows(reports: &[TimelineReport]) -> Vec<Vec<String>> {
    reports
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                r.events.to_string(),
                r.solves.to_string(),
                r.failures.to_string(),
                r.cascades.to_string(),
                r.partitions.to_string(),
                (r.recoveries + r.heals).to_string(),
                r.churns.to_string(),
                r.peak_failed.to_string(),
                (r.fully_recovered as u8).to_string(),
                (r.baseline_restored as u8).to_string(),
                r.pm_worst_recovered_ppm.to_string(),
            ]
        })
        .collect()
}

/// Everything `BENCH_timeline.json` reports besides the per-run timing:
/// the topology, the timeline space, and the selection accounting.
#[derive(Debug, Clone)]
pub struct TimelineRunInfo {
    /// Switch count of the topology.
    pub nodes: usize,
    /// Edge count of the topology.
    pub edges: usize,
    /// Seed the topology, the timeline space and the sample derive from.
    pub seed: u64,
    /// Number of controllers.
    pub controllers: usize,
    /// Number of routed flows.
    pub flows: usize,
    /// Timeline-space size (`--timelines`).
    pub space_size: u64,
    /// Timelines selected after `--max-scenarios` (equals `space_size`
    /// when exhaustive).
    pub selected: u64,
    /// Whether the selection is a seeded sample rather than exhaustive.
    pub sampled: bool,
    /// The `--shard i/m` slice this run executed, if any.
    pub shard: Option<(usize, usize)>,
    /// Timelines actually replayed (the shard's slice of the selection).
    pub timelines_run: usize,
    /// Peak in-flight timelines (`sim.sweep.live_peak`).
    pub live_peak: u64,
    /// The contract bound on `live_peak`: `jobs × batch`.
    pub live_bound: u64,
}

/// Renders `BENCH_timeline.json` (schema version 1): the
/// [`TimelineRunInfo`] header, aggregate event-kind totals over the
/// replayed timelines, the wall-clock of the whole sweep, and — when a
/// [`pm_obs`] snapshot with spans is supplied — the `phase_breakdown`
/// section the other BENCH artifacts carry.
pub fn bench_timeline_json(
    info: &TimelineRunInfo,
    jobs: usize,
    sweep_ms: f64,
    reports: &[TimelineReport],
    phases: Option<&pm_obs::Snapshot>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"figure\": \"timeline_sweep\",");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    out.push_str("  \"topology\": {");
    let _ = write!(
        out,
        "\"model\": \"waxman\", \"nodes\": {}, \"edges\": {}, \"seed\": {}, \
         \"controllers\": {}, \"flows\": {}",
        info.nodes, info.edges, info.seed, info.controllers, info.flows
    );
    out.push_str("},\n");
    out.push_str("  \"timeline_space\": {");
    let shard = match info.shard {
        Some((i, m)) => format!("\"{i}/{m}\""),
        None => "null".into(),
    };
    let _ = write!(
        out,
        "\"size\": {}, \"selected\": {}, \"sampled\": {}, \"shard\": {shard}, \
         \"timelines_run\": {}, \"live_peak\": {}, \"live_bound\": {}",
        info.space_size,
        info.selected,
        info.sampled,
        info.timelines_run,
        info.live_peak,
        info.live_bound
    );
    out.push_str("},\n");
    let sum =
        |f: fn(&TimelineReport) -> usize| -> u64 { reports.iter().map(|r| f(r) as u64).sum() };
    let recovered = reports.iter().filter(|r| r.fully_recovered).count();
    let restored = reports.iter().filter(|r| r.baseline_restored).count();
    let worst_ppm = reports
        .iter()
        .map(|r| r.pm_worst_recovered_ppm)
        .min()
        .unwrap_or(1_000_000);
    out.push_str("  \"events\": {");
    let _ = write!(
        out,
        "\"total\": {}, \"solves\": {}, \"failures\": {}, \"cascades\": {}, \
         \"partitions\": {}, \"recoveries\": {}, \"heals\": {}, \"churns\": {}",
        sum(|r| r.events),
        sum(|r| r.solves),
        sum(|r| r.failures),
        sum(|r| r.cascades),
        sum(|r| r.partitions),
        sum(|r| r.recoveries),
        sum(|r| r.heals),
        sum(|r| r.churns)
    );
    out.push_str("},\n");
    out.push_str("  \"outcomes\": {");
    let _ = write!(
        out,
        "\"fully_recovered\": {recovered}, \"baseline_restored\": {restored}, \
         \"pm_worst_recovered_ppm\": {worst_ppm}"
    );
    out.push_str("},\n");
    if let Some(snap) = phases {
        if !snap.spans.is_empty() {
            out.push_str("  \"phase_breakdown\": {\n");
            for (i, s) in snap.spans.iter().enumerate() {
                let _ = write!(
                    out,
                    "    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                    s.name, s.count, s.total_ns, s.max_ns
                );
                out.push_str(if i + 1 < snap.spans.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  },\n");
        }
    }
    let _ = writeln!(out, "  \"sweep_ms\": {sweep_ms:.3}");
    out.push_str("}\n");
    out
}

/// Writes [`bench_timeline_json`] to `BENCH_timeline.json` in the CSV
/// directory (or the working directory when `--csv` was not given),
/// folding in the recorder's span aggregates when it is on.
pub fn write_bench_timeline_json(
    opts: &EvalOptions,
    info: &TimelineRunInfo,
    sweep_ms: f64,
    reports: &[TimelineReport],
) {
    let snap = pm_obs::enabled().then(pm_obs::snapshot);
    let body = bench_timeline_json(info, opts.jobs, sweep_ms, reports, snap.as_ref());
    let dir = opts
        .csv_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(dir.join("BENCH_timeline.json"), body))
    {
        eprintln!("warning: could not write BENCH_timeline.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_sdwan::SdWanBuilder;

    #[test]
    fn selection_samples_shards_and_degrades_like_scenarios() {
        let a = TimelineSelection::sampled(500, 64, 7);
        let b = TimelineSelection::sampled(500, 64, 7);
        let c = TimelineSelection::sampled(500, 64, 8);
        assert!(a.is_sampled());
        assert_eq!(a.len(), 64);
        let ids = |s: &TimelineSelection| (0..s.len()).map(|p| s.id_at(p)).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b), "same seed, same sample");
        assert_ne!(ids(&a), ids(&c), "different seed, different sample");
        assert!(ids(&a).windows(2).all(|w| w[0] < w[1]), "sorted, distinct");

        let full = TimelineSelection::sampled(500, 500, 7);
        assert!(!full.is_sampled(), "covering budget stays exhaustive");
        assert_eq!(full.len(), 500);

        for m in [1usize, 2, 3, 7] {
            let mut covered = Vec::new();
            for i in 1..=m {
                covered.extend(a.shard_range(Some((i, m))));
            }
            assert_eq!(covered, (0..a.len()).collect::<Vec<u64>>(), "m = {m}");
        }
    }

    #[test]
    fn timeline_sweep_is_schedule_independent_and_shardable() {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let opts = |jobs: usize, shard: Option<(usize, usize)>| EvalOptions {
            skip_optimal: true,
            jobs,
            batch: 2,
            shard,
            ..Default::default()
        };
        let reports_with = |jobs: usize, shard| {
            let engine = SweepEngine::new(&net, opts(jobs, shard));
            let space = engine.timeline_space(6, TimelineParams::default());
            let sel = engine.timeline_selection(&space);
            engine.sweep_timelines(&space, &sel)
        };
        let serial = reports_with(1, None);
        let parallel = reports_with(8, None);
        assert_eq!(serial.len(), 6);
        assert_eq!(serial, parallel, "jobs=1 and jobs=8 must agree exactly");

        let mut union = Vec::new();
        for i in 1..=3 {
            union.extend(reports_with(4, Some((i, 3))));
        }
        assert_eq!(union, serial, "3 shards must reassemble the sweep");
    }

    #[test]
    fn rows_match_headers_and_are_deterministic() {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let engine = SweepEngine::new(
            &net,
            EvalOptions {
                skip_optimal: true,
                jobs: 2,
                ..Default::default()
            },
        );
        let space = engine.timeline_space(3, TimelineParams::default());
        let sel = engine.timeline_selection(&space);
        let reports = engine.sweep_timelines(&space, &sel);
        let rows = timeline_rows(&reports);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.len(), TIMELINE_CASE_HEADERS.len());
        }
        assert_eq!(rows, timeline_rows(&reports));
    }

    #[test]
    fn bench_timeline_json_schema_is_pinned() {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let engine = SweepEngine::new(
            &net,
            EvalOptions {
                skip_optimal: true,
                jobs: 1,
                ..Default::default()
            },
        );
        let space = engine.timeline_space(2, TimelineParams::default());
        let sel = engine.timeline_selection(&space);
        let reports = engine.sweep_timelines(&space, &sel);
        let info = TimelineRunInfo {
            nodes: net.switch_count(),
            edges: 0,
            seed: 42,
            controllers: net.controllers().len(),
            flows: net.flows().len(),
            space_size: 2,
            selected: 2,
            sampled: false,
            shard: None,
            timelines_run: reports.len(),
            live_peak: 1,
            live_bound: 32,
        };
        let json = bench_timeline_json(&info, 1, 12.5, &reports, None);
        assert!(json.starts_with("{\n  \"schema_version\": 1,\n"));
        assert!(json.contains("  \"figure\": \"timeline_sweep\",\n"));
        assert!(json.contains("\"timelines_run\": 2"));
        assert!(json.contains("\"fully_recovered\": "));
        assert!(json.contains("  \"sweep_ms\": 12.500\n"));
        assert!(json.trim_end().ends_with('}'));
    }
}
