//! Live structured progress for long sweeps.
//!
//! An [`EventLog`] streams one JSON object per line (JSONL) to a file as a
//! sweep runs — `sweep_start`, `case_start` / `case_finish` per failure
//! case (with the worker that ran it and a running p95 of case times), and
//! `sweep_finish` — plus an opt-in, rate-limited progress line on stderr.
//! `--events FILE` / `--progress` on the bench binaries wire it up; see
//! [`crate::EvalOptions`].
//!
//! Event emission is strictly observational: it wraps the sweep closure in
//! [`crate::SweepEngine::run_cases`] and never touches a
//! [`crate::CaseResult`], so sweep output stays byte-identical with the
//! log on or off, at any `--jobs` count (pinned by an integration test).
//! Timestamps are relative to log creation (`t_ms`), keeping lines short
//! and the format clock-independent.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Minimum gap between stderr progress lines (the final case always
/// prints).
const PROGRESS_EVERY_MS: u128 = 100;

/// A shared, thread-safe JSONL event stream for sweep progress.
///
/// Create one with [`EventLog::create`], hand it to the engine via
/// [`crate::EvalOptions::events`], and call [`EventLog::close`] (or just
/// drop it) when the run ends.
#[derive(Debug)]
pub struct EventLog {
    epoch: Instant,
    progress: bool,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    out: Option<BufWriter<File>>,
    seq: u64,
    total: usize,
    done: usize,
    /// Sorted case durations (µs) of the current sweep, for the running
    /// p95.
    durations_us: Vec<u64>,
    last_progress: Option<Instant>,
    sweep_t0: Instant,
}

/// Handle for one in-flight case, returned by [`EventLog::case_start`] and
/// consumed by [`EventLog::case_finish`].
#[derive(Debug)]
pub struct CaseToken {
    seq: u64,
    started: Instant,
}

impl EventLog {
    /// Opens an event log writing JSONL to `path` (truncating), with an
    /// optional stderr progress line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending path if the file cannot be
    /// created.
    pub fn create(path: Option<&Path>, progress: bool) -> Result<EventLog, String> {
        let out = match path {
            Some(p) => Some(BufWriter::new(
                File::create(p).map_err(|e| pm_obs::artifact_error("event log", p, &e))?,
            )),
            None => None,
        };
        let now = Instant::now();
        Ok(EventLog {
            epoch: now,
            progress,
            inner: Mutex::new(Inner {
                out,
                seq: 0,
                total: 0,
                done: 0,
                durations_us: Vec::new(),
                last_progress: None,
                sweep_t0: now,
            }),
        })
    }

    /// Marks the start of a sweep of `cases` cases on `jobs` workers.
    /// Resets the per-sweep progress counters; one log may span several
    /// sweeps.
    pub fn sweep_start(&self, cases: usize, jobs: usize) {
        let mut inner = self.lock();
        inner.total = cases;
        inner.done = 0;
        inner.durations_us.clear();
        inner.sweep_t0 = Instant::now();
        let t_ms = self.t_ms();
        inner.write_line(&format!(
            "{{\"event\": \"sweep_start\", \"t_ms\": {t_ms}, \"cases\": {cases}, \"jobs\": {jobs}}}"
        ));
    }

    /// Records that a worker picked up the case labelled `label`.
    pub fn case_start(&self, label: &str) -> CaseToken {
        let worker = crate::par::current_worker();
        let mut inner = self.lock();
        let seq = inner.seq;
        inner.seq += 1;
        let t_ms = self.t_ms();
        inner.write_line(&format!(
            "{{\"event\": \"case_start\", \"t_ms\": {t_ms}, \"seq\": {seq}, \
             \"case\": \"{}\", \"worker\": {worker}}}",
            pm_obs::json::escape(label)
        ));
        CaseToken {
            seq,
            started: Instant::now(),
        }
    }

    /// Records completion of the case started as `token`, updating the
    /// running p95 and (if enabled and due) the stderr progress line.
    pub fn case_finish(&self, token: CaseToken, label: &str) {
        let elapsed_us = u64::try_from(token.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let worker = crate::par::current_worker();
        let mut inner = self.lock();
        let at = inner.durations_us.partition_point(|&d| d <= elapsed_us);
        inner.durations_us.insert(at, elapsed_us);
        inner.done += 1;
        let (done, total) = (inner.done, inner.total);
        let p95_us = inner.p95_us();
        let t_ms = self.t_ms();
        inner.write_line(&format!(
            "{{\"event\": \"case_finish\", \"t_ms\": {t_ms}, \"seq\": {}, \
             \"case\": \"{}\", \"worker\": {worker}, \"elapsed_ms\": {:.3}, \
             \"done\": {done}, \"total\": {total}, \"p95_ms\": {:.3}}}",
            token.seq,
            pm_obs::json::escape(label),
            elapsed_us as f64 / 1000.0,
            p95_us as f64 / 1000.0,
        ));
        if self.progress {
            let now = Instant::now();
            let due = done >= total
                || match inner.last_progress {
                    None => true,
                    Some(t) => (now - t).as_millis() >= PROGRESS_EVERY_MS,
                };
            if due {
                inner.last_progress = Some(now);
                eprintln!(
                    "sweep: {done}/{total} cases done, last {label} ({:.1} ms), p95 {:.1} ms",
                    elapsed_us as f64 / 1000.0,
                    p95_us as f64 / 1000.0,
                );
            }
        }
    }

    /// Marks the end of the current sweep and pushes everything buffered
    /// so far to the file: a sweep boundary is exactly where an external
    /// watcher (`pmctl obs top --events`) wants a consistent prefix.
    pub fn sweep_finish(&self) {
        let mut inner = self.lock();
        let cases = inner.done;
        let elapsed_ms = inner.sweep_t0.elapsed().as_millis();
        let t_ms = self.t_ms();
        inner.write_line(&format!(
            "{{\"event\": \"sweep_finish\", \"t_ms\": {t_ms}, \"cases\": {cases}, \
             \"elapsed_ms\": {elapsed_ms}}}"
        ));
        if let Some(out) = &mut inner.out {
            let _ = out.flush();
        }
    }

    /// Flushes the underlying file, reporting any deferred write error.
    ///
    /// # Errors
    ///
    /// Returns a message naming the failure; the log is unusable for
    /// writing afterwards either way.
    pub fn close(&self) -> Result<(), String> {
        let mut inner = self.lock();
        if let Some(mut out) = inner.out.take() {
            out.flush()
                .map_err(|e| format!("cannot flush event log: {e}"))?;
        }
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("event log lock never poisoned")
    }

    fn t_ms(&self) -> u128 {
        self.epoch.elapsed().as_millis()
    }
}

impl Drop for EventLog {
    /// Best-effort flush so buffered lines (a mid-sweep panic unwinding
    /// through `Arc` drops, a binary that forgot `close`) survive on
    /// disk; a truncated final line is possible, so readers must tolerate
    /// one (the replay test pins that).
    fn drop(&mut self) {
        let _ = self.close();
    }
}

impl Inner {
    fn write_line(&mut self, line: &str) {
        if let Some(out) = &mut self.out {
            // Write errors surface at close(); losing progress lines must
            // not take down the sweep itself.
            let _ = writeln!(out, "{line}");
        }
    }

    fn p95_us(&self) -> u64 {
        let n = self.durations_us.len();
        if n == 0 {
            return 0;
        }
        let rank = (n * 95).div_ceil(100).max(1);
        self.durations_us[rank - 1]
    }
}

/// Renders one sweep's worth of synthetic events for tests and docs: the
/// exact line format the log writes, without touching the filesystem.
pub fn example_lines() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{{\"event\": \"sweep_start\", \"t_ms\": 0, \"cases\": 2, \"jobs\": 1}}"
    );
    let _ = writeln!(
        s,
        "{{\"event\": \"case_start\", \"t_ms\": 0, \"seq\": 0, \"case\": \"(2)\", \"worker\": 0}}"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_valid_jsonl_and_count_up() {
        let dir = std::env::temp_dir().join(format!("pm-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let log = EventLog::create(Some(&path), false).unwrap();
        log.sweep_start(2, 1);
        let t = log.case_start("(2)");
        log.case_finish(t, "(2)");
        let t = log.case_start("(5,9)");
        log.case_finish(t, "(5,9)");
        log.sweep_finish();
        log.close().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in &lines {
            pm_obs::json::validate(line).expect(line);
        }
        assert!(lines[0].contains("\"event\": \"sweep_start\""));
        assert!(lines[2].contains("\"done\": 1, \"total\": 2"));
        assert!(lines[4].contains("\"done\": 2, \"total\": 2"));
        assert!(lines[5].contains("\"event\": \"sweep_finish\""));
        // seq increases monotonically across cases.
        assert!(lines[1].contains("\"seq\": 0") && lines[3].contains("\"seq\": 1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_reports_the_offending_path() {
        let dir = std::env::temp_dir().join(format!("pm-events-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("file");
        std::fs::write(&blocker, "x").unwrap();
        // Using a file as a directory component fails even as root.
        let path = blocker.join("events.jsonl");
        let err = EventLog::create(Some(&path), false).unwrap_err();
        assert!(err.contains("event log"), "{err}");
        assert!(err.contains("events.jsonl"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn running_p95_is_nearest_rank() {
        let log = EventLog::create(None, false).unwrap();
        log.sweep_start(3, 1);
        {
            let mut inner = log.lock();
            inner.durations_us = vec![10, 20, 1000];
        }
        assert_eq!(log.lock().p95_us(), 1000);
        let log2 = EventLog::create(None, false).unwrap();
        assert_eq!(log2.lock().p95_us(), 0, "empty log has p95 0");
    }

    #[test]
    fn example_lines_validate() {
        for line in example_lines().lines() {
            pm_obs::json::validate(line).expect(line);
        }
    }

    #[test]
    fn drop_flushes_buffered_lines_and_truncated_streams_replay() {
        let dir = std::env::temp_dir().join(format!("pm-events-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            // No close(): the Drop impl must push the BufWriter's buffer
            // (well under 8 KiB here, so nothing reached the file yet)
            // out to disk.
            let log = EventLog::create(Some(&path), false).unwrap();
            log.sweep_start(1, 1);
            let t = log.case_start("(7)");
            log.case_finish(t, "(7)");
            log.sweep_finish();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines()
                .any(|l| l.contains("\"event\": \"sweep_finish\"")),
            "drop must flush: {text}"
        );

        // A panic can still truncate mid-line (the OS flushes what it
        // has). Replay of such a stream — the consumer contract pmctl
        // obs top relies on — recovers every complete line and skips
        // exactly the torn tail.
        let mut truncated = text.clone();
        truncated.push_str("{\"event\": \"case_start\", \"t_ms\": 99, \"se");
        let replayed: Vec<&str> = truncated
            .lines()
            .filter(|l| pm_obs::json::validate(l).is_ok())
            .collect();
        assert_eq!(replayed.len(), text.lines().count());
        assert!(replayed.last().unwrap().contains("sweep_finish"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
