//! Shared driver for the Fig. 4 / Fig. 5 / Fig. 6 binaries: run every
//! k-failure combination and print one table per panel.

use crate::harness::{run_case, CaseResult, EvalOptions};
use crate::report::{box_summary, pct, render_table, write_csv};
use crate::sweep::combinations;
use pm_sdwan::{Programmability, SdWanBuilder};

/// Algorithm column order for every panel.
const ALGOS: [&str; 4] = ["RetroFlow", "PM", "PG", "Optimal"];

/// Runs all `k`-controller-failure cases and prints the paper's panels.
///
/// `fig_name` tags the output ("fig4" …); `switch_panels` adds the
/// recovered-switch and controller-resource panels that Figs. 5 and 6 have
/// but Fig. 4 does not.
pub fn run_failure_figure(k: usize, fig_name: &str, switch_panels: bool, opts: &EvalOptions) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let prog = Programmability::compute(&net);
    let cases: Vec<CaseResult> = combinations(net.controllers().len(), k)
        .iter()
        .map(|failed| {
            eprintln!(
                "running case {}...",
                crate::harness::case_label(&net, failed)
            );
            run_case(&net, &prog, failed, opts)
        })
        .collect();

    let algo_cols: Vec<&str> = if opts.skip_optimal {
        ALGOS[..3].to_vec()
    } else {
        ALGOS.to_vec()
    };

    // A cell for (case, algo) or "-" when the algorithm has no result (the
    // exact solver that failed to prove optimality, as in the paper's
    // Fig. 6 where Optimal appears in only 12 of 20 cases).
    let cell = |case: &CaseResult, algo: &str, f: &dyn Fn(&crate::AlgoRun) -> String| -> String {
        match case.run(algo) {
            None => "-".into(),
            Some(run) => {
                if run.proved_optimal == Some(false) {
                    format!("[{}]", f(run)) // best-effort incumbent, not proven
                } else {
                    f(run)
                }
            }
        }
    };

    let panel =
        |title: &str, f: &dyn Fn(&crate::AlgoRun) -> String| -> (String, Vec<Vec<String>>) {
            let mut rows = Vec::new();
            for case in &cases {
                let mut row = vec![case.label.clone()];
                for algo in &algo_cols {
                    row.push(cell(case, algo, f));
                }
                rows.push(row);
            }
            (title.to_string(), rows)
        };

    let mut headers: Vec<&str> = vec!["case"];
    headers.extend(algo_cols.iter());

    let mut panels: Vec<(String, Vec<Vec<String>>)> = Vec::new();
    panels.push(panel(
        "(a) path programmability of recovered flows over recoverable offline flows \
         (min/q1/median/q3/max; higher better)",
        &|r| box_summary(r.metrics.programmability_box_recoverable()),
    ));

    // Panel (b): total programmability normalized to RetroFlow.
    {
        let mut rows = Vec::new();
        for case in &cases {
            let retro = case
                .run("RetroFlow")
                .map(|r| r.metrics.total_programmability)
                .unwrap_or(0);
            let mut row = vec![case.label.clone()];
            for algo in &algo_cols {
                if retro == 0 {
                    // Normalizing to a zero baseline is meaningless (the
                    // paper has no such case); print the absolute total.
                    row.push(cell(case, algo, &|r| {
                        format!("abs {}", r.metrics.total_programmability)
                    }));
                } else {
                    row.push(cell(case, algo, &|r| {
                        pct(r.metrics.total_programmability as f64 / retro as f64)
                    }));
                }
            }
            rows.push(row);
        }
        panels.push((
            "(b) total path programmability, % of RetroFlow (higher better)".into(),
            rows,
        ));
    }

    panels.push(panel(
        "(c) recovered programmable flows, % of recoverable offline flows",
        &|r| pct(r.metrics.recovered_fraction_of_recoverable()),
    ));

    if switch_panels {
        panels.push(panel("(d) recovered offline switches (count)", &|r| {
            format!(
                "{}/{}",
                r.metrics.recovered_switches, r.metrics.offline_switches
            )
        }));
        panels.push(panel(
            "(e) control resource used / available (flows)",
            &|r| {
                let used = r.metrics.total_capacity_used();
                let avail: u32 = r.metrics.controller_usage.iter().map(|u| u.available).sum();
                format!("{used}/{avail}")
            },
        ));
    }

    panels.push(panel(
        if switch_panels {
            "(f) per-flow communication overhead, ms (lower better)"
        } else {
            "(d) per-flow communication overhead, ms (lower better)"
        },
        &|r| format!("{:.3}", r.metrics.per_flow_overhead_ms()),
    ));

    println!(
        "{} — {} controller failure(s), {} case(s){}",
        fig_name,
        k,
        cases.len(),
        if opts.skip_optimal {
            ", Optimal skipped"
        } else {
            ""
        }
    );
    if !opts.skip_optimal {
        let proved = cases
            .iter()
            .filter(|c| c.run("Optimal").and_then(|r| r.proved_optimal) == Some(true))
            .count();
        println!(
            "Optimal proved optimality in {proved} of {} cases within {:?} \
             (bracketed [values] are best-effort incumbents)",
            cases.len(),
            opts.optimal_time_limit
        );
    }
    println!();
    for (i, (title, rows)) in panels.iter().enumerate() {
        println!("{title}");
        print!("{}", render_table(&headers, rows));
        println!();
        if let Some(dir) = &opts.csv_dir {
            write_csv(
                dir,
                &format!("{fig_name}_panel{}", (b'a' + i as u8) as char),
                &headers,
                rows,
            );
        }
    }

    // Headline number: the best PM-vs-RetroFlow total-programmability gain.
    if let Some((label, gain)) = cases
        .iter()
        .filter_map(|c| {
            let retro = c.run("RetroFlow")?.metrics.total_programmability;
            if retro == 0 {
                return None; // meaningless normalization
            }
            let pm = c.run("PM")?.metrics.total_programmability as f64;
            Some((c.label.clone(), pm / retro as f64))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    {
        println!(
            "headline: PM's best total-programmability gain over RetroFlow is {} in case {label}",
            pct(gain)
        );
    }
}
