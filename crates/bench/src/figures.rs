//! Shared driver for the Fig. 4 / Fig. 5 / Fig. 6 binaries: run every
//! k-failure combination through the [`SweepEngine`] and print one table
//! per panel, plus per-case computation-time statistics.

use crate::harness::{CaseResult, EvalOptions};
use crate::par::{timing_stats, SweepEngine};
use crate::report::{box_summary, pct, render_table, write_csv};
use pm_sdwan::SdWanBuilder;
use std::fmt::Write as _;

/// Algorithm column order for every panel.
const ALGOS: [&str; 4] = ["RetroFlow", "PM", "PG", "Optimal"];

/// One titled metric table of a figure.
pub type Panel = (String, Vec<Vec<String>>);

/// Builds the per-panel metric tables of a failure figure from finished
/// cases. Everything here derives from plan metrics — no wall-clock
/// numbers — so the output is identical however the cases were scheduled.
pub fn build_panels(
    cases: &[CaseResult],
    include_optimal: bool,
    switch_panels: bool,
) -> (Vec<String>, Vec<Panel>) {
    let algo_cols: Vec<&str> = if include_optimal {
        ALGOS.to_vec()
    } else {
        ALGOS[..3].to_vec()
    };

    // A cell for (case, algo) or "-" when the algorithm has no result (the
    // exact solver that failed to prove optimality, as in the paper's
    // Fig. 6 where Optimal appears in only 12 of 20 cases).
    let cell = |case: &CaseResult, algo: &str, f: &dyn Fn(&crate::AlgoRun) -> String| -> String {
        match case.run(algo) {
            None => "-".into(),
            Some(run) => {
                if run.proved_optimal == Some(false) {
                    format!("[{}]", f(run)) // best-effort incumbent, not proven
                } else {
                    f(run)
                }
            }
        }
    };

    let panel = |title: &str, f: &dyn Fn(&crate::AlgoRun) -> String| -> Panel {
        let mut rows = Vec::new();
        for case in cases {
            let mut row = vec![case.label.clone()];
            for algo in &algo_cols {
                row.push(cell(case, algo, f));
            }
            rows.push(row);
        }
        (title.to_string(), rows)
    };

    let mut panels: Vec<Panel> = Vec::new();
    panels.push(panel(
        "(a) path programmability of recovered flows over recoverable offline flows \
         (min/q1/median/q3/max; higher better)",
        &|r| box_summary(r.metrics.programmability_box_recoverable()),
    ));

    // Panel (b): total programmability normalized to RetroFlow.
    {
        let mut rows = Vec::new();
        for case in cases {
            let retro = case
                .run("RetroFlow")
                .map(|r| r.metrics.total_programmability)
                .unwrap_or(0);
            let mut row = vec![case.label.clone()];
            for algo in &algo_cols {
                if retro == 0 {
                    // Normalizing to a zero baseline is meaningless (the
                    // paper has no such case); print the absolute total.
                    row.push(cell(case, algo, &|r| {
                        format!("abs {}", r.metrics.total_programmability)
                    }));
                } else {
                    row.push(cell(case, algo, &|r| {
                        pct(r.metrics.total_programmability as f64 / retro as f64)
                    }));
                }
            }
            rows.push(row);
        }
        panels.push((
            "(b) total path programmability, % of RetroFlow (higher better)".into(),
            rows,
        ));
    }

    panels.push(panel(
        "(c) recovered programmable flows, % of recoverable offline flows",
        &|r| pct(r.metrics.recovered_fraction_of_recoverable()),
    ));

    if switch_panels {
        panels.push(panel("(d) recovered offline switches (count)", &|r| {
            format!(
                "{}/{}",
                r.metrics.recovered_switches, r.metrics.offline_switches
            )
        }));
        panels.push(panel(
            "(e) control resource used / available (flows)",
            &|r| {
                let used = r.metrics.total_capacity_used();
                let avail: u32 = r.metrics.controller_usage.iter().map(|u| u.available).sum();
                format!("{used}/{avail}")
            },
        ));
    }

    panels.push(panel(
        if switch_panels {
            "(f) per-flow communication overhead, ms (lower better)"
        } else {
            "(d) per-flow communication overhead, ms (lower better)"
        },
        &|r| format!("{:.3}", r.metrics.per_flow_overhead_ms()),
    ));

    let mut headers: Vec<String> = vec!["case".into()];
    headers.extend(algo_cols.iter().map(|s| s.to_string()));
    (headers, panels)
}

/// Renders the complete metric report of a failure figure (header line,
/// panels, headline). Byte-identical across runs and `--jobs` values as
/// long as the algorithms themselves are deterministic — wall-clock
/// statistics live in [`timing_report`] instead.
pub fn metrics_report(
    cases: &[CaseResult],
    k: usize,
    fig_name: &str,
    switch_panels: bool,
    opts: &EvalOptions,
) -> String {
    let (headers, panels) = build_panels(cases, !opts.skip_optimal, switch_panels);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — {} controller failure(s), {} case(s){}",
        fig_name,
        k,
        cases.len(),
        if opts.skip_optimal {
            ", Optimal skipped"
        } else {
            ""
        }
    );
    if !opts.skip_optimal {
        let proved = cases
            .iter()
            .filter(|c| c.run("Optimal").and_then(|r| r.proved_optimal) == Some(true))
            .count();
        let _ = writeln!(
            out,
            "Optimal proved optimality in {proved} of {} cases within {:?} \
             (bracketed [values] are best-effort incumbents)",
            cases.len(),
            opts.optimal_time_limit
        );
    }
    if cases.is_empty() {
        let _ = writeln!(out, "no failure cases to report");
        return out;
    }
    out.push('\n');
    for (title, rows) in &panels {
        let _ = writeln!(out, "{title}");
        out.push_str(&render_table(&header_refs, rows));
        out.push('\n');
    }

    // Headline number: the best PM-vs-RetroFlow total-programmability gain.
    if let Some((label, gain)) = cases
        .iter()
        .filter_map(|c| {
            let retro = c.run("RetroFlow")?.metrics.total_programmability;
            if retro == 0 {
                return None; // meaningless normalization
            }
            let pm = c.run("PM")?.metrics.total_programmability as f64;
            Some((c.label.clone(), pm / retro as f64))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    {
        let _ = writeln!(
            out,
            "headline: PM's best total-programmability gain over RetroFlow is {} in case {label}",
            pct(gain)
        );
    }
    out
}

/// Renders per-case computation-time statistics (mean / p95 / max per
/// algorithm). These are wall-clock measurements: they vary run to run
/// and contend for cores at `--jobs` above 1.
pub fn timing_report(cases: &[CaseResult]) -> String {
    if cases.is_empty() {
        return "\nper-case computation time: no cases ran\n".to_string();
    }
    let rows = timing_rows(cases);
    let mut out = String::new();
    out.push_str("\nper-case computation time (wall clock; varies run to run)\n");
    out.push_str(&render_table(&TIMING_HEADERS, &rows));
    out
}

/// Column headers of the timing table / CSV.
pub const TIMING_HEADERS: [&str; 5] = ["algorithm", "mean_ms", "p95_ms", "max_ms", "cases"];

/// The timing table rows (shared by the text report and the CSV file).
pub fn timing_rows(cases: &[CaseResult]) -> Vec<Vec<String>> {
    timing_stats(cases)
        .into_iter()
        .map(|s| {
            vec![
                s.algorithm.to_string(),
                format!("{:.3}", s.mean.as_secs_f64() * 1e3),
                format!("{:.3}", s.p95.as_secs_f64() * 1e3),
                format!("{:.3}", s.max.as_secs_f64() * 1e3),
                s.cases.to_string(),
            ]
        })
        .collect()
}

/// Renders the machine-readable timing baseline `BENCH_sweep.json`: one
/// record per failure count with per-algorithm mean/p95/max per-case sweep
/// time in milliseconds. The tree deliberately carries no serde, so the
/// JSON is hand-formatted here — field order and layout are part of the
/// schema and pinned by the determinism tests.
pub fn bench_sweep_json(figure: &str, jobs: usize, sweeps: &[(usize, &[CaseResult])]) -> String {
    bench_sweep_json_with_phases(figure, jobs, sweeps, None)
}

/// [`bench_sweep_json`] with an optional `phase_breakdown` section built
/// from a [`pm_obs`] snapshot: per-span aggregate count / total / max
/// nanoseconds. The section is present only when a snapshot with recorded
/// spans is supplied, so default (recorder-off) runs keep the exact layout
/// of schema version 1.
pub fn bench_sweep_json_with_phases(
    figure: &str,
    jobs: usize,
    sweeps: &[(usize, &[CaseResult])],
    phases: Option<&pm_obs::Snapshot>,
) -> String {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"figure\": \"{figure}\",");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    if let Some(snap) = phases {
        if !snap.spans.is_empty() {
            out.push_str("  \"phase_breakdown\": {\n");
            for (i, s) in snap.spans.iter().enumerate() {
                let _ = write!(
                    out,
                    "    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                    s.name, s.count, s.total_ns, s.max_ns
                );
                out.push_str(if i + 1 < snap.spans.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  },\n");
        }
    }
    out.push_str("  \"sweeps\": [\n");
    for (si, (k, cases)) in sweeps.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"failures\": {k},");
        let _ = writeln!(out, "      \"cases\": {},", cases.len());
        out.push_str("      \"algorithms\": [\n");
        let stats = timing_stats(cases);
        for (ai, s) in stats.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"name\": \"{}\", \"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \
                 \"max_ms\": {:.3}, \"cases\": {}}}",
                s.algorithm,
                ms(s.mean),
                ms(s.p95),
                ms(s.max),
                s.cases
            );
            out.push_str(if ai + 1 < stats.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if si + 1 < sweeps.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`bench_sweep_json`] to `BENCH_sweep.json` in the CSV directory
/// (or the working directory when `--csv` was not given). Errors are
/// reported to stderr but not fatal, like the CSV writers.
pub fn write_bench_sweep_json(opts: &EvalOptions, figure: &str, sweeps: &[(usize, &[CaseResult])]) {
    // With the recorder on, fold the span aggregates into the baseline
    // file; recorder-off runs emit the schema-1 layout unchanged.
    let snap = pm_obs::enabled().then(pm_obs::snapshot);
    let body = bench_sweep_json_with_phases(figure, opts.jobs, sweeps, snap.as_ref());
    let dir = opts
        .csv_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(dir.join("BENCH_sweep.json"), body))
    {
        eprintln!("warning: could not write BENCH_sweep.json: {e}");
    }
}

/// Everything `BENCH_scale.json` records about a `scale_sweep` run besides
/// the timing table: the generated topology, the scenario space and how it
/// was cut down (sampling, sharding), and the streaming-dispatch memory
/// high-water mark.
#[derive(Debug, Clone)]
pub struct ScaleRunInfo {
    /// Switch count of the generated Waxman topology.
    pub nodes: usize,
    /// Edge count of the generated topology.
    pub edges: usize,
    /// Seed the topology (and the scenario sample) was generated from.
    pub seed: u64,
    /// Number of placed controllers.
    pub controllers: usize,
    /// Number of routed flows.
    pub flows: usize,
    /// Simultaneous controller failures per scenario.
    pub failures: usize,
    /// Full scenario-space size `C(controllers, failures)`.
    pub space_size: u64,
    /// Scenarios selected after `--max-scenarios` (equals `space_size`
    /// when exhaustive).
    pub selected: u64,
    /// Whether the selection is a seeded sample rather than exhaustive.
    pub sampled: bool,
    /// The `--shard i/m` slice this run executed, if any.
    pub shard: Option<(usize, usize)>,
    /// Cases actually run (the shard's slice of the selection).
    pub cases_run: usize,
    /// Peak number of simultaneously materialized scenarios
    /// (`sweep.scenario.live_peak`).
    pub live_peak: u64,
    /// The contract bound on `live_peak`: `jobs × batch`.
    pub live_bound: u64,
}

/// Renders `BENCH_scale.json` (schema version 1): the [`ScaleRunInfo`]
/// header, the per-algorithm timing table of [`bench_sweep_json`], and —
/// when a [`pm_obs`] snapshot with spans is supplied — the same
/// `phase_breakdown` section `BENCH_sweep.json` carries.
pub fn bench_scale_json(
    info: &ScaleRunInfo,
    jobs: usize,
    cases: &[CaseResult],
    phases: Option<&pm_obs::Snapshot>,
) -> String {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"figure\": \"scale_sweep\",");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    out.push_str("  \"topology\": {");
    let _ = write!(
        out,
        "\"model\": \"waxman\", \"nodes\": {}, \"edges\": {}, \"seed\": {}, \
         \"controllers\": {}, \"flows\": {}, \"failures\": {}",
        info.nodes, info.edges, info.seed, info.controllers, info.flows, info.failures
    );
    out.push_str("},\n");
    out.push_str("  \"scenario_space\": {");
    let shard = match info.shard {
        Some((i, m)) => format!("\"{i}/{m}\""),
        None => "null".into(),
    };
    let _ = write!(
        out,
        "\"size\": {}, \"selected\": {}, \"sampled\": {}, \"shard\": {shard}, \
         \"cases_run\": {}, \"live_peak\": {}, \"live_bound\": {}",
        info.space_size,
        info.selected,
        info.sampled,
        info.cases_run,
        info.live_peak,
        info.live_bound
    );
    out.push_str("},\n");
    if let Some(snap) = phases {
        if !snap.spans.is_empty() {
            out.push_str("  \"phase_breakdown\": {\n");
            for (i, s) in snap.spans.iter().enumerate() {
                let _ = write!(
                    out,
                    "    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                    s.name, s.count, s.total_ns, s.max_ns
                );
                out.push_str(if i + 1 < snap.spans.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  },\n");
        }
    }
    out.push_str("  \"algorithms\": [\n");
    let stats = timing_stats(cases);
    for (ai, s) in stats.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"max_ms\": {:.3}, \"cases\": {}}}",
            s.algorithm,
            ms(s.mean),
            ms(s.p95),
            ms(s.max),
            s.cases
        );
        out.push_str(if ai + 1 < stats.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`bench_scale_json`] to `BENCH_scale.json` in the CSV directory
/// (or the working directory when `--csv` was not given), folding in the
/// recorder's span aggregates when it is on — the `BENCH_sweep.json`
/// conventions exactly.
pub fn write_bench_scale_json(opts: &EvalOptions, info: &ScaleRunInfo, cases: &[CaseResult]) {
    let snap = pm_obs::enabled().then(pm_obs::snapshot);
    let body = bench_scale_json(info, opts.jobs, cases, snap.as_ref());
    let dir = opts
        .csv_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(dir.join("BENCH_scale.json"), body))
    {
        eprintln!("warning: could not write BENCH_scale.json: {e}");
    }
}

/// Runs all `k`-controller-failure cases and prints the paper's panels.
///
/// `fig_name` tags the output ("fig4" …); `switch_panels` adds the
/// recovered-switch and controller-resource panels that Figs. 5 and 6 have
/// but Fig. 4 does not.
pub fn run_failure_figure(k: usize, fig_name: &str, switch_panels: bool, opts: &EvalOptions) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let engine = SweepEngine::new(&net, opts.clone());
    let sel = engine.selection(k);
    let shard_positions = sel.shard_range(opts.shard);
    let case_count = shard_positions.end - shard_positions.start;
    let shard_note = match opts.shard {
        Some((i, m)) => format!(" (shard {i}/{m} of {})", sel.len()),
        None => String::new(),
    };
    eprintln!(
        "{fig_name}: running {case_count} case(s){shard_note} on {} thread(s)...",
        opts.jobs
    );
    let cases = engine.sweep_selection(&sel);

    print!(
        "{}",
        metrics_report(&cases, k, fig_name, switch_panels, opts)
    );
    print!("{}", timing_report(&cases));

    if let Some(dir) = &opts.csv_dir {
        let (headers, panels) = build_panels(&cases, !opts.skip_optimal, switch_panels);
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        for (i, (_, rows)) in panels.iter().enumerate() {
            write_csv(
                dir,
                &format!("{fig_name}_panel{}", (b'a' + i as u8) as char),
                &header_refs,
                rows,
            );
        }
        write_csv(
            dir,
            &format!("{fig_name}_timing"),
            &TIMING_HEADERS,
            &timing_rows(&cases),
        );
    }
    write_bench_sweep_json(opts, fig_name, &[(k, cases.as_slice())]);
    opts.export_observability();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_sdwan::SdWanBuilder;

    fn quick_cases(jobs: usize) -> Vec<CaseResult> {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let opts = EvalOptions {
            skip_optimal: true,
            jobs,
            ..Default::default()
        };
        SweepEngine::new(&net, opts).sweep(1)
    }

    #[test]
    fn metrics_report_is_schedule_independent() {
        let opts = EvalOptions {
            skip_optimal: true,
            ..Default::default()
        };
        let serial = metrics_report(&quick_cases(1), 1, "fig4", false, &opts);
        let parallel = metrics_report(&quick_cases(8), 1, "fig4", false, &opts);
        assert_eq!(serial, parallel);
        assert!(serial.contains("fig4 — 1 controller failure(s), 6 case(s), Optimal skipped"));
    }

    #[test]
    fn panels_have_one_row_per_case() {
        let cases = quick_cases(2);
        let (headers, panels) = build_panels(&cases, false, true);
        assert_eq!(headers, vec!["case", "RetroFlow", "PM", "PG"]);
        assert_eq!(panels.len(), 6);
        for (_, rows) in &panels {
            assert_eq!(rows.len(), cases.len());
        }
    }

    #[test]
    fn timing_rows_cover_all_heuristics() {
        let rows = timing_rows(&quick_cases(2));
        let names: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(names, vec!["RetroFlow", "PM", "PG"]);
    }

    #[test]
    fn empty_case_list_reports_gracefully() {
        // A sweep can legitimately produce no cases (k > controller
        // count); every report path must cope without panicking.
        let opts = EvalOptions {
            skip_optimal: true,
            ..Default::default()
        };
        let metrics = metrics_report(&[], 7, "figX", false, &opts);
        assert!(metrics.contains("0 case(s)"));
        assert!(metrics.contains("no failure cases to report"));
        let timing = timing_report(&[]);
        assert!(timing.contains("no cases ran"));
        assert!(timing_rows(&[]).is_empty());
        let json = bench_sweep_json("figX", 1, &[(7, &[])]);
        pm_obs::json::validate(&json).expect("valid JSON for an empty sweep");
    }

    #[test]
    fn bench_sweep_json_phase_breakdown_is_valid_json() {
        let cases = quick_cases(1);
        let snap = pm_obs::Snapshot {
            spans: vec![
                pm_obs::SpanAgg {
                    name: "pm.recover",
                    count: 6,
                    total_ns: 120,
                    max_ns: 40,
                },
                pm_obs::SpanAgg {
                    name: "sweep.case",
                    count: 6,
                    total_ns: 600,
                    max_ns: 150,
                },
            ],
            ..Default::default()
        };
        let json = bench_sweep_json_with_phases("fig4", 2, &[(1, &cases)], Some(&snap));
        pm_obs::json::validate(&json).expect("valid JSON with phase_breakdown");
        assert!(json.contains("\"phase_breakdown\""));
        assert!(json.contains("\"pm.recover\": {\"count\": 6"));
        // The empty snapshot adds nothing: layout stays schema-1.
        let plain = bench_sweep_json("fig4", 2, &[(1, &cases)]);
        let empty = pm_obs::Snapshot::default();
        assert_eq!(
            bench_sweep_json_with_phases("fig4", 2, &[(1, &cases)], Some(&empty)),
            plain
        );
    }
}
