//! Deterministic parallel failure sweeps.
//!
//! [`SweepEngine`] runs the failure cases of a sweep across a scoped
//! worker pool (`--jobs N`, default: all cores) and merges the per-case
//! results in the scenario sequence's order — ascending colexicographic
//! rank (see [`crate::ScenarioSpace`]) — regardless of which worker
//! finishes first. Scenarios are **streamed**: workers claim contiguous
//! position batches and materialize each failure set on demand with
//! [`crate::ScenarioSpace::unrank`], so live scenario storage never
//! exceeds `jobs × batch` entries however large `C(n, f)` grows (the
//! `sweep.scenario.live_peak` counter records the observed high-water
//! mark). `--shard i/m` restricts a run to one contiguous slice of the
//! sequence and `--max-scenarios` subsamples it; both compose with any
//! job count without changing a single result byte.
//!
//! Each case reuses the engine's [`NetCache`] (shortest-path trees,
//! path counts, programmability, controller loads, delay orders), so a
//! case costs only the algorithms themselves. Metric output is therefore
//! byte-identical between `--jobs 1` and any other thread count; only the
//! wall-clock statistics vary run to run.

use crate::harness::{case_label, run_algorithms, AlgoWorkspace, CaseResult, EvalOptions};
use crate::scenario_space::{ScenarioSelection, ScenarioSpace};
use pm_core::{FmssmInstance, Pm, RecoveryAlgorithm};
use pm_sdwan::{
    ControllerId, FailureScenario, NetCache, PlanMetrics, Programmability, RecoveryPlan, SdWan,
    SdwanError,
};
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    static WORKER_ID: Cell<usize> = const { Cell::new(0) };
}

/// The zero-based id of the [`par_map`] worker running on this thread —
/// 0 on the calling thread (serial path) and any thread outside a sweep.
/// The event log ([`crate::events`]) stamps it on `case_start` /
/// `case_finish` lines.
pub fn current_worker() -> usize {
    WORKER_ID.with(Cell::get)
}

/// Applies `f` to every item on up to `jobs` scoped worker threads and
/// returns the results in **input order**, whatever the completion order.
///
/// Work is handed out through an atomic index, so long and short items mix
/// freely across workers. With `jobs <= 1` (or a single item) everything
/// runs on the calling thread.
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is propagated when the
/// worker scope joins).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let (next, slots, f) = (&next, &slots, &f);
            scope.spawn(move || {
                WORKER_ID.with(|id| id.set(w));
                let obs = pm_obs::enabled();
                if obs {
                    pm_obs::set_thread_label(format!("sweep-worker-{w}"));
                }
                // "Queue wait" is the gap between useful work items on this
                // worker: dispatch plus the result-slot lock of the
                // previous item. It bounds the merge/dispatch overhead the
                // engine adds on top of the algorithms themselves.
                let mut idle_since = obs.then(std::time::Instant::now);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if let Some(t0) = idle_since {
                        pm_obs::observe(
                            "sweep.queue_wait_ns",
                            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    }
                    let busy_t0 = obs.then(std::time::Instant::now);
                    let r = f(i, &items[i]);
                    if let Some(t0) = busy_t0 {
                        pm_obs::count(
                            format!("sweep.worker.{w}.busy_ns"),
                            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                        pm_obs::count(format!("sweep.worker.{w}.cases"), 1);
                    }
                    slots.lock().expect("no poisoned worker")[i] = Some(r);
                    idle_since = obs.then(std::time::Instant::now);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Streams the integer positions of `range` through a batch-claiming
/// worker pool and returns `f(position)` results in **position order**,
/// whatever the completion order — the generic core of the streaming
/// dispatch contract: workers claim contiguous batches of `batch`
/// positions through an atomic counter, so at most `jobs × batch`
/// positions are in flight at once and output is independent of the job
/// count.
///
/// When the [`pm_obs`] recorder is on, the dispatch records
/// `{prefix}.live_peak` (high-water mark of in-flight positions),
/// `{prefix}.worker.{w}.busy_ns` / `{prefix}.worker.{w}.items` and the
/// `{prefix}.queue_wait_ns` histogram, mirroring the scenario sweep's
/// counters under the caller's namespace.
///
/// # Panics
///
/// Panics if `f` panics on any position (propagated when the worker
/// scope joins).
pub fn stream_indexed<R, F>(
    range: Range<u64>,
    jobs: usize,
    batch: usize,
    prefix: &str,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let total = usize::try_from(range.end.saturating_sub(range.start))
        .expect("streamed result set fits memory");
    let obs = pm_obs::enabled();
    let jobs = jobs.clamp(1, total.max(1));
    let batch = batch.max(1);
    if jobs <= 1 {
        let mut out = Vec::with_capacity(total);
        for pos in range {
            if obs {
                pm_obs::count_max(format!("{prefix}.live_peak"), 1);
            }
            out.push(f(pos));
        }
        return out;
    }
    let next = AtomicU64::new(0);
    let live = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..total).map(|_| None).collect());
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let (next, live, slots, f) = (&next, &live, &slots, &f);
            let range = range.clone();
            scope.spawn(move || {
                WORKER_ID.with(|id| id.set(w));
                if obs {
                    pm_obs::set_thread_label(format!("{prefix}-worker-{w}"));
                }
                let mut idle_since = obs.then(std::time::Instant::now);
                loop {
                    let claim = next.fetch_add(1, Ordering::Relaxed);
                    let start = range.start + claim * batch as u64;
                    if start >= range.end {
                        break;
                    }
                    let end = (start + batch as u64).min(range.end);
                    let claimed = (end - start) as usize;
                    if obs {
                        let now = live.fetch_add(claimed, Ordering::Relaxed) + claimed;
                        pm_obs::count_max(format!("{prefix}.live_peak"), now as u64);
                    }
                    if let Some(t0) = idle_since {
                        pm_obs::observe(
                            format!("{prefix}.queue_wait_ns"),
                            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    }
                    for pos in start..end {
                        let busy_t0 = obs.then(std::time::Instant::now);
                        let r = f(pos);
                        if let Some(t0) = busy_t0 {
                            pm_obs::count(
                                format!("{prefix}.worker.{w}.busy_ns"),
                                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                            );
                            pm_obs::count(format!("{prefix}.worker.{w}.items"), 1);
                        }
                        let slot = (pos - range.start) as usize;
                        slots.lock().expect("no poisoned worker")[slot] = Some(r);
                    }
                    if obs {
                        live.fetch_sub(claimed, Ordering::Relaxed);
                    }
                    idle_since = obs.then(std::time::Instant::now);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Runs failure sweeps against one network, in parallel, with every
/// per-network quantity precomputed once.
///
/// # Example
///
/// ```
/// use pm_bench::{EvalOptions, SweepEngine};
/// use pm_sdwan::SdWanBuilder;
///
/// let net = SdWanBuilder::att_paper_setup().build()?;
/// let opts = EvalOptions { skip_optimal: true, ..Default::default() };
/// let engine = SweepEngine::new(&net, opts);
/// let cases = engine.sweep(1); // all 6 single-failure cases, in order
/// assert_eq!(cases.len(), 6);
/// assert_eq!(cases[0].label, "(2)");
/// # Ok::<(), pm_sdwan::SdwanError>(())
/// ```
#[derive(Debug)]
pub struct SweepEngine<'net> {
    net: &'net SdWan,
    cache: NetCache,
    opts: EvalOptions,
}

/// State one sweep worker carries from case to case on the incremental
/// path: the previous scenario (patched in place by
/// [`pm_sdwan::FailureScenario::apply_delta`] chains) and the algorithms'
/// reusable buffers. Dropping it between cases reproduces the cold path
/// bit for bit — it holds no decisions, only already-computed state.
#[derive(Debug, Default)]
struct DeltaState<'net> {
    scenario: Option<FailureScenario<'net>>,
    ws: AlgoWorkspace,
}

impl<'net> SweepEngine<'net> {
    /// Precomputes the [`NetCache`] of `net` and readies a pool of
    /// `opts.jobs` workers (created per sweep; no threads idle between
    /// calls).
    pub fn new(net: &'net SdWan, opts: EvalOptions) -> Self {
        let cache = NetCache::build(net);
        if opts.eager_warm {
            cache.topo().warm();
        }
        SweepEngine { net, cache, opts }
    }

    /// The network under evaluation.
    pub fn network(&self) -> &'net SdWan {
        self.net
    }

    /// The per-network cache shared by all cases.
    pub fn cache(&self) -> &NetCache {
        &self.cache
    }

    /// The cached programmability table.
    pub fn programmability(&self) -> &Programmability {
        self.cache.programmability()
    }

    /// The evaluation options this engine runs with.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// Builds the failure scenario for `failed` from cached state.
    ///
    /// # Errors
    ///
    /// As for [`SdWan::fail`].
    pub fn scenario(&self, failed: &[ControllerId]) -> Result<FailureScenario<'net>, SdwanError> {
        self.net.fail_cached(failed, &self.cache)
    }

    /// Runs all algorithms on one failure case.
    ///
    /// # Panics
    ///
    /// Panics if the case is invalid or an algorithm produces an invalid
    /// plan — both indicate bugs, not data errors.
    pub fn run_case(&self, failed: &[ControllerId]) -> CaseResult {
        self.run_case_in(failed, &mut DeltaState::default())
    }

    /// [`SweepEngine::run_case`] against a worker's carried state: when
    /// `state` holds the previous case's scenario (and
    /// [`EvalOptions::incremental`] is on), the new failure set is reached
    /// by a chain of single `(revived, failed)` swaps patched in place —
    /// the dominant cost of a heuristic-only case — instead of a rebuild.
    /// Results are byte-identical to the cold path: every delta operation
    /// reproduces the fresh construction exactly.
    fn run_case_in(&self, failed: &[ControllerId], state: &mut DeltaState<'net>) -> CaseResult {
        let label = case_label(self.net, failed);
        let case_t0 = pm_obs::enabled().then(std::time::Instant::now);
        let _span = pm_obs::span_labeled("sweep.case", label.clone());
        self.advance_scenario(failed, &mut state.scenario);
        let DeltaState { scenario, ws } = state;
        let scenario = scenario.as_ref().expect("scenario just advanced");
        let inst_span = pm_obs::span("sweep.instance");
        let inst = FmssmInstance::with_cache(scenario, self.cache.programmability(), &self.cache);
        drop(inst_span);
        let runs = run_algorithms(
            scenario,
            self.cache.programmability(),
            &inst,
            &self.opts,
            ws,
        );
        if pm_obs::enabled() {
            pm_obs::count("sweep.cases", 1);
        }
        // Per-case wall time as a histogram, so a live scrape can derive a
        // running p95 (`pmctl obs top`) — the span aggregate only exposes
        // totals and the max.
        if let Some(t0) = case_t0 {
            pm_obs::observe(
                "sweep.case_ns",
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        CaseResult {
            failed: failed.to_vec(),
            label,
            runs,
        }
    }

    /// Solves one failure case with PM alone and returns the plan itself
    /// — the lookup side of the `pmd` plan store compares against exactly
    /// this. Byte-identical to the PM run inside
    /// [`SweepEngine::run_case`]: same cached instance construction, same
    /// warm-workspace entry point.
    ///
    /// # Panics
    ///
    /// Panics if the case is invalid or PM produces an invalid plan —
    /// both indicate bugs, not data errors.
    pub fn solve_plan(&self, failed: &[ControllerId]) -> SolvedPlan {
        self.solve_plan_in(failed, &mut DeltaState::default())
    }

    /// [`SweepEngine::solve_plan`] against a worker's carried delta state,
    /// mirroring [`SweepEngine::run_case`]'s `run_case_in`.
    fn solve_plan_in(&self, failed: &[ControllerId], state: &mut DeltaState<'net>) -> SolvedPlan {
        let label = case_label(self.net, failed);
        let _span = pm_obs::span_labeled("store.solve", label.clone());
        self.advance_scenario(failed, &mut state.scenario);
        let DeltaState { scenario, ws } = state;
        let scenario = scenario.as_ref().expect("scenario just advanced");
        let prog = self.cache.programmability();
        let inst = FmssmInstance::with_cache(scenario, prog, &self.cache);
        let pm = Pm::new();
        let t0 = std::time::Instant::now();
        let plan = pm
            .recover_in(&inst, &mut ws.pm)
            .expect("PM always produces a plan");
        let elapsed = t0.elapsed();
        plan.validate(scenario, prog, pm.is_flow_level())
            .expect("plan must be valid");
        let metrics = PlanMetrics::compute(scenario, prog, &plan, pm.middle_layer_ms());
        SolvedPlan {
            failed: failed.to_vec(),
            label,
            plan,
            metrics,
            elapsed,
        }
    }

    /// Solves every scenario of `sel` with PM, streaming positions
    /// through the worker pool on the delta/warm-start path — the `pmd`
    /// plan-store build. The whole selection is solved (shards do not
    /// apply: a plan store answers any rank); results come back in
    /// ascending position order, byte-identical at any job count.
    pub fn solve_selection(&self, sel: &ScenarioSelection) -> Vec<SolvedPlan> {
        self.stream_cases(sel, 0..sel.len(), |failed, state| {
            self.solve_plan_in(failed, state)
        })
    }

    /// Leaves the scenario for `failed` in `slot`, patching the previous
    /// scenario in place when one is carried and the incremental path is
    /// on. Consecutive colex positions usually differ in one controller;
    /// across block boundaries (or sampled selections) the symmetric
    /// difference is larger and is applied as a chain of single swaps,
    /// each a valid intermediate scenario.
    fn advance_scenario(&self, failed: &[ControllerId], slot: &mut Option<FailureScenario<'net>>) {
        if self.opts.incremental {
            if let Some(prev) = slot.as_mut() {
                if prev.failed_controllers().len() == failed.len() {
                    let outs: Vec<ControllerId> = prev
                        .failed_controllers()
                        .iter()
                        .copied()
                        .filter(|c| !failed.contains(c))
                        .collect();
                    let ins: Vec<ControllerId> = failed
                        .iter()
                        .copied()
                        .filter(|c| !prev.failed_controllers().contains(c))
                        .collect();
                    for (&remove, &add) in outs.iter().zip(&ins) {
                        prev.apply_delta_cached(remove, add, &self.cache)
                            .expect("symmetric-difference swaps are valid");
                    }
                    if pm_obs::enabled() {
                        pm_obs::count("sweep.scenario.delta_cases", 1);
                        pm_obs::count("sweep.scenario.delta_swaps", outs.len() as u64);
                    }
                    return;
                }
            }
        }
        *slot = Some(self.scenario(failed).expect("valid failure case"));
    }

    /// Runs the given cases across the worker pool; results come back in
    /// the order of `cases`, independent of completion order.
    ///
    /// When [`EvalOptions::events`] is set, per-case progress events are
    /// streamed as the sweep runs. Event emission only wraps the per-case
    /// closure — it never reads or writes a [`CaseResult`] — so results
    /// are byte-identical with the log on or off.
    pub fn run_cases(&self, cases: &[Vec<ControllerId>]) -> Vec<CaseResult> {
        let Some(events) = &self.opts.events else {
            return par_map(cases, self.opts.jobs, |_, failed| self.run_case(failed));
        };
        events.sweep_start(cases.len(), self.opts.jobs.clamp(1, cases.len().max(1)));
        let out = par_map(cases, self.opts.jobs, |_, failed| {
            let label = case_label(self.net, failed);
            let token = events.case_start(&label);
            let result = self.run_case(failed);
            events.case_finish(token, &label);
            result
        });
        events.sweep_finish();
        out
    }

    /// The scenario selection a `f`-failure sweep of this engine executes:
    /// the full colex rank space of f-subsets of the controllers, cut down
    /// to [`EvalOptions::max_scenarios`] by seeded sampling when set.
    pub fn selection(&self, f: usize) -> ScenarioSelection {
        let space = ScenarioSpace::new(self.net.controllers().len(), f);
        match self.opts.max_scenarios {
            Some(max) => ScenarioSelection::sampled(space, max, self.opts.seed),
            None => ScenarioSelection::exhaustive(space),
        }
    }

    /// Runs every `k`-controller-failure case of this engine's
    /// [`SweepEngine::selection`], in ascending colex rank order,
    /// restricted to [`EvalOptions::shard`] when set.
    pub fn sweep(&self, k: usize) -> Vec<CaseResult> {
        let sel = self.selection(k);
        self.sweep_selection(&sel)
    }

    /// Runs the scenarios of `sel` this engine's shard covers, streaming
    /// them through the worker pool in position order.
    ///
    /// Workers claim contiguous batches of [`EvalOptions::batch`]
    /// positions and materialize each batch's failure sets on demand, so
    /// at most `jobs × batch` scenario descriptors are live at once —
    /// recorded in the `sweep.scenario.live_peak` counter when the
    /// recorder is on. Results merge in position order, making output
    /// independent of the job count, and m shards concatenated in shard
    /// order byte-identical to the unsharded run.
    pub fn sweep_selection(&self, sel: &ScenarioSelection) -> Vec<CaseResult> {
        self.run_stream(sel, sel.shard_range(self.opts.shard))
    }

    fn run_stream(&self, sel: &ScenarioSelection, range: Range<u64>) -> Vec<CaseResult> {
        let total = usize::try_from(range.end - range.start).expect("shard result set fits memory");
        if pm_obs::enabled() {
            pm_obs::count_max("sweep.scenario.space_size", sel.space().count());
            pm_obs::count_max("sweep.scenario.selected", sel.len());
            if sel.is_sampled() {
                pm_obs::count("sweep.scenario.sampled_sweeps", 1);
            }
        }
        if let Some(events) = &self.opts.events {
            events.sweep_start(total, self.opts.jobs.clamp(1, total.max(1)));
        }
        let out = self.stream_cases(sel, range, |failed, state| match &self.opts.events {
            None => self.run_case_in(failed, state),
            Some(events) => {
                let label = case_label(self.net, failed);
                let token = events.case_start(&label);
                let result = self.run_case_in(failed, state);
                events.case_finish(token, &label);
                result
            }
        });
        if let Some(events) = &self.opts.events {
            events.sweep_finish();
        }
        out
    }

    /// The streaming batch-claim dispatch shared by the sweep
    /// ([`SweepEngine::sweep_selection`]) and the PM-only store build
    /// ([`SweepEngine::solve_selection`]): positions of `range` are
    /// materialized on demand and `f` runs against a per-worker
    /// [`DeltaState`], reset per case when the incremental path is off.
    /// Results come back in position order at any job count.
    fn stream_cases<R, F>(&self, sel: &ScenarioSelection, range: Range<u64>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&[ControllerId], &mut DeltaState<'net>) -> R + Sync,
    {
        let total = usize::try_from(range.end - range.start).expect("result set fits memory");
        let obs = pm_obs::enabled();
        let jobs = self.opts.jobs.clamp(1, total.max(1));
        let batch = self.opts.batch.max(1);
        let run_one = |failed: &[ControllerId], state: &mut DeltaState<'net>| -> R {
            if !self.opts.incremental {
                // Cold recompute: nothing survives between cases.
                *state = DeltaState::default();
            }
            f(failed, state)
        };
        if jobs <= 1 {
            // Serial path: one scenario buffer, reused across positions,
            // and one delta state threaded through the whole shard.
            let mut buf = Vec::new();
            let mut state = DeltaState::default();
            let mut out = Vec::with_capacity(total);
            for pos in range {
                sel.scenario_at_into(pos, &mut buf);
                if obs {
                    pm_obs::count_max("sweep.scenario.live_peak", 1);
                }
                out.push(run_one(&buf, &mut state));
            }
            out
        } else {
            let next = AtomicU64::new(0);
            let live = AtomicUsize::new(0);
            let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..total).map(|_| None).collect());
            std::thread::scope(|scope| {
                for w in 0..jobs {
                    let (next, live, slots, run_one) = (&next, &live, &slots, &run_one);
                    let range = range.clone();
                    scope.spawn(move || {
                        WORKER_ID.with(|id| id.set(w));
                        if obs {
                            pm_obs::set_thread_label(format!("sweep-worker-{w}"));
                        }
                        let mut batch_buf: Vec<Vec<ControllerId>> = Vec::with_capacity(batch);
                        // Carried across every block this worker claims:
                        // the first case of a block deltas from the last
                        // case of the previous one.
                        let mut state = DeltaState::default();
                        let mut idle_since = obs.then(std::time::Instant::now);
                        loop {
                            let claim = next.fetch_add(1, Ordering::Relaxed);
                            let start = range.start + claim * batch as u64;
                            if start >= range.end {
                                break;
                            }
                            let end = (start + batch as u64).min(range.end);
                            batch_buf.clear();
                            for pos in start..end {
                                batch_buf.push(sel.scenario_at(pos));
                            }
                            if obs {
                                let now = live.fetch_add(batch_buf.len(), Ordering::Relaxed)
                                    + batch_buf.len();
                                pm_obs::count_max("sweep.scenario.live_peak", now as u64);
                            }
                            if let Some(t0) = idle_since {
                                pm_obs::observe(
                                    "sweep.queue_wait_ns",
                                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                                );
                            }
                            for (off, failed) in batch_buf.iter().enumerate() {
                                let busy_t0 = obs.then(std::time::Instant::now);
                                let r = run_one(failed, &mut state);
                                if let Some(t0) = busy_t0 {
                                    pm_obs::count(
                                        format!("sweep.worker.{w}.busy_ns"),
                                        u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                                    );
                                    pm_obs::count(format!("sweep.worker.{w}.cases"), 1);
                                }
                                let slot = (start - range.start) as usize + off;
                                slots.lock().expect("no poisoned worker")[slot] = Some(r);
                            }
                            if obs {
                                live.fetch_sub(batch_buf.len(), Ordering::Relaxed);
                            }
                            idle_since = obs.then(std::time::Instant::now);
                        }
                    });
                }
            });
            slots
                .into_inner()
                .expect("workers joined")
                .into_iter()
                .map(|r| r.expect("every slot filled"))
                .collect()
        }
    }
}

/// One PM-solved failure case: the plan itself plus its metrics — the
/// unit [`crate::PlanStore`] holds and `pmd` serves.
#[derive(Debug, Clone)]
pub struct SolvedPlan {
    /// The failed controllers, ascending.
    pub failed: Vec<ControllerId>,
    /// The paper-style case label, e.g. `(13,20)`.
    pub label: String,
    /// PM's recovery plan.
    pub plan: RecoveryPlan,
    /// All evaluation metrics of the plan.
    pub metrics: PlanMetrics,
    /// Wall-clock time of the recovery computation.
    pub elapsed: Duration,
}

/// Wall-clock statistics of one algorithm across a sweep's cases.
#[derive(Debug, Clone)]
pub struct TimingStats {
    /// Algorithm display name.
    pub algorithm: &'static str,
    /// Number of cases the algorithm ran in.
    pub cases: usize,
    /// Mean per-case computation time.
    pub mean: Duration,
    /// 95th-percentile per-case computation time (nearest-rank).
    pub p95: Duration,
    /// Worst per-case computation time.
    pub max: Duration,
}

/// Per-algorithm timing statistics over a list of cases, in the
/// algorithms' first-seen order.
pub fn timing_stats(cases: &[CaseResult]) -> Vec<TimingStats> {
    let mut order: Vec<&'static str> = Vec::new();
    for case in cases {
        for run in &case.runs {
            if !order.contains(&run.name) {
                order.push(run.name);
            }
        }
    }
    order
        .into_iter()
        .map(|name| {
            let mut times: Vec<Duration> = cases
                .iter()
                .filter_map(|c| c.run(name))
                .map(|r| r.elapsed)
                .collect();
            times.sort();
            let n = times.len();
            let total: Duration = times.iter().sum();
            // Nearest-rank p95: the ceil(0.95 n)-th smallest value.
            let rank = (n * 95).div_ceil(100).max(1);
            TimingStats {
                algorithm: name,
                cases: n,
                mean: total / n as u32,
                p95: times[rank - 1],
                max: *times.last().expect("at least one case"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_sdwan::SdWanBuilder;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..57).collect();
        // Uneven per-item cost so completion order differs from input order.
        let f = |i: usize, &x: &usize| {
            if x % 7 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            (i, x * x)
        };
        let serial = par_map(&items, 1, f);
        let parallel = par_map(&items, 8, f);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[10], (10, 100));
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u32], 4, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn stream_indexed_matches_serial_and_preserves_position_order() {
        // Uneven per-position cost so completion order differs from
        // position order.
        let f = |pos: u64| {
            if pos % 5 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            pos * pos
        };
        let serial = stream_indexed(3..40, 1, 4, "test.stream", f);
        let parallel = stream_indexed(3..40, 8, 4, "test.stream", f);
        assert_eq!(serial, parallel);
        assert_eq!(serial[0], 9);
        assert_eq!(serial.len(), 37);
        assert!(stream_indexed(5..5, 4, 4, "test.stream", |p| p).is_empty());
    }

    #[test]
    fn engine_matches_serial_harness() {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let opts = EvalOptions {
            skip_optimal: true,
            jobs: 4,
            ..Default::default()
        };
        let engine = SweepEngine::new(&net, opts.clone());
        let prog = Programmability::compute(&net);
        for case in engine.sweep(1) {
            let serial = crate::harness::run_case(&net, &prog, &case.failed, &opts);
            assert_eq!(case.label, serial.label);
            assert_eq!(case.runs.len(), serial.runs.len());
            for (a, b) in case.runs.iter().zip(&serial.runs) {
                assert_eq!(a.name, b.name);
                assert_eq!(
                    a.metrics.per_flow_programmability,
                    b.metrics.per_flow_programmability
                );
                assert_eq!(
                    a.metrics.total_programmability,
                    b.metrics.total_programmability
                );
                assert_eq!(a.metrics.recovered_flows, b.metrics.recovered_flows);
                assert!((a.total_delay - b.total_delay).abs() < 1e-9);
            }
        }
    }

    /// All metric-bearing fields of a case, as a comparable string.
    fn case_fingerprint(c: &CaseResult) -> String {
        let runs: Vec<String> = c
            .runs
            .iter()
            .map(|r| {
                format!(
                    "{}:{}:{}:{}",
                    r.name,
                    r.metrics.total_programmability,
                    r.metrics.recovered_flows,
                    r.metrics.min_programmability
                )
            })
            .collect();
        format!("{}|{}", c.label, runs.join(";"))
    }

    #[test]
    fn streamed_sweep_matches_materialized_cases() {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let opts = EvalOptions {
            skip_optimal: true,
            jobs: 4,
            batch: 2,
            ..Default::default()
        };
        let engine = SweepEngine::new(&net, opts);
        for k in 1..=3 {
            let streamed = engine.sweep(k);
            // Reference: materialize the same colex sequence and run it
            // through the explicit-case path.
            let sel = engine.selection(k);
            let cases: Vec<Vec<ControllerId>> =
                (0..sel.len()).map(|p| sel.scenario_at(p)).collect();
            let reference = engine.run_cases(&cases);
            assert_eq!(streamed.len(), reference.len());
            for (a, b) in streamed.iter().zip(&reference) {
                assert_eq!(case_fingerprint(a), case_fingerprint(b), "k = {k}");
            }
        }
    }

    #[test]
    fn shard_union_equals_unsharded() {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let base = EvalOptions {
            skip_optimal: true,
            jobs: 3,
            batch: 2,
            ..Default::default()
        };
        let full: Vec<String> = SweepEngine::new(&net, base.clone())
            .sweep(2)
            .iter()
            .map(case_fingerprint)
            .collect();
        for m in [1usize, 2, 4] {
            let mut union = Vec::new();
            for i in 1..=m {
                let opts = EvalOptions {
                    shard: Some((i, m)),
                    ..base.clone()
                };
                union.extend(
                    SweepEngine::new(&net, opts)
                        .sweep(2)
                        .iter()
                        .map(case_fingerprint),
                );
            }
            assert_eq!(union, full, "m = {m} shards must reassemble the sweep");
        }
    }

    #[test]
    fn max_scenarios_caps_and_seeds_the_sweep() {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let opts = |max: Option<u64>, seed: u64| EvalOptions {
            skip_optimal: true,
            jobs: 2,
            max_scenarios: max,
            seed,
            ..Default::default()
        };
        // C(6, 3) = 20; a budget of 8 samples, a budget of 100 does not.
        let sampled = SweepEngine::new(&net, opts(Some(8), 1)).sweep(3);
        assert_eq!(sampled.len(), 8);
        let again = SweepEngine::new(&net, opts(Some(8), 1)).sweep(3);
        assert_eq!(
            sampled.iter().map(case_fingerprint).collect::<Vec<_>>(),
            again.iter().map(case_fingerprint).collect::<Vec<_>>(),
        );
        let exhaustive = SweepEngine::new(&net, opts(Some(100), 1)).sweep(3);
        assert_eq!(exhaustive.len(), 20, "oversized budget stays exhaustive");
    }

    #[test]
    fn live_scenario_peak_stays_within_jobs_times_batch() {
        // The recorder is process-global; this is the only pm-bench unit
        // test that enables it, so the counters below are all ours.
        pm_obs::enable();
        pm_obs::reset();
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let opts = EvalOptions {
            skip_optimal: true,
            jobs: 2,
            batch: 3,
            ..Default::default()
        };
        SweepEngine::new(&net, opts).sweep(2);
        let snap = pm_obs::snapshot();
        let peak = snap
            .counters
            .iter()
            .find(|(n, _)| n == "sweep.scenario.live_peak")
            .map(|&(_, v)| v)
            .expect("live peak recorded");
        assert!(peak >= 1, "peak observed");
        assert!(peak <= 2 * 3, "peak {peak} exceeds jobs * batch");
        let space = snap
            .counters
            .iter()
            .find(|(n, _)| n == "sweep.scenario.space_size")
            .map(|&(_, v)| v);
        assert_eq!(space, Some(15), "C(6,2) recorded");
    }

    #[test]
    fn timing_stats_shape() {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let opts = EvalOptions {
            skip_optimal: true,
            jobs: 2,
            ..Default::default()
        };
        let engine = SweepEngine::new(&net, opts);
        let cases = engine.sweep(1);
        let stats = timing_stats(&cases);
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].algorithm, "RetroFlow");
        for s in &stats {
            assert_eq!(s.cases, cases.len());
            assert!(s.mean <= s.max);
            assert!(s.p95 <= s.max);
        }
    }
}
