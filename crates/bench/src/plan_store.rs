//! The precomputed recovery-plan store behind `pmd` (ROADMAP item 1).
//!
//! The paper's promise is *predictable* recovery: when a failure set is
//! observed, the plan must be served, not solved. [`PlanStore::build`]
//! enumerates every failure set of `f ≤ horizon` controllers through
//! [`crate::ScenarioSpace`] and solves them offline with the
//! [`crate::SweepEngine`]'s PM-only delta/warm-start path
//! ([`SweepEngine::solve_selection`]), so at failure time a lookup is one
//! rank computation plus one dense index.
//!
//! ## Layout
//!
//! Plans live in one dense `Vec`, ordered by failure count and then by
//! colexicographic rank within the count — the same order the sweep
//! engine emits. A *global rank* addresses the whole store:
//!
//! ```text
//! rank 0 .. C(n,1)                 — single failures,   colex order
//! rank C(n,1) .. C(n,1)+C(n,2)    — double failures,   colex order
//! ...                              — up to f = horizon
//! ```
//!
//! [`PlanStore::rank_of`] maps a failure set onto its global rank in
//! `O(f)` (Pascal-table binomials), [`PlanStore::get`] is a slice index.
//! Failure sets beyond the horizon are simply not present — the serving
//! layer ([`crate::pmd`]) falls back to an on-demand solve.

use crate::par::{SolvedPlan, SweepEngine};
use crate::scenario_space::{ScenarioSelection, ScenarioSpace};
use pm_sdwan::ControllerId;
use std::time::Duration;

/// One precomputed plan: PM's recovery plan in its stable text form
/// ([`pm_sdwan::RecoveryPlan::to_text`]) plus the summary metrics the
/// serving layer reports with it.
#[derive(Debug, Clone)]
pub struct StoredPlan {
    /// Global rank of this plan in the store.
    pub rank: u64,
    /// The failed controllers, ascending.
    pub failed: Vec<ControllerId>,
    /// The paper-style case label, e.g. `(13,20)`.
    pub label: String,
    /// The plan, serialized with [`pm_sdwan::RecoveryPlan::to_text`].
    pub plan_text: String,
    /// The paper's `obj₁ = r`: least per-flow programmability.
    pub min_programmability: u64,
    /// The paper's `obj₂`: summed per-flow programmability.
    pub total_programmability: u64,
    /// Offline flows recovered with programmability > 0.
    pub recovered_flows: usize,
    /// Offline flows in the scenario.
    pub offline_flows: usize,
    /// Offline switches remapped to an active controller.
    pub recovered_switches: usize,
    /// Offline switches in the scenario.
    pub offline_switches: usize,
    /// Wall-clock nanoseconds of the offline PM solve.
    pub solve_ns: u64,
}

impl StoredPlan {
    fn from_solved(rank: u64, solved: &SolvedPlan, buf: &mut String) -> StoredPlan {
        buf.clear();
        solved.plan.to_text_into(buf);
        StoredPlan {
            rank,
            failed: solved.failed.clone(),
            label: solved.label.clone(),
            plan_text: buf.clone(),
            min_programmability: solved.metrics.min_programmability,
            total_programmability: solved.metrics.total_programmability,
            recovered_flows: solved.metrics.recovered_flows,
            offline_flows: solved.metrics.offline_flows,
            recovered_switches: solved.metrics.recovered_switches,
            offline_switches: solved.metrics.offline_switches,
            solve_ns: u64::try_from(solved.elapsed.as_nanos()).unwrap_or(u64::MAX),
        }
    }
}

/// A dense, rank-indexed store of every `f ≤ horizon` recovery plan.
#[derive(Debug)]
pub struct PlanStore {
    controllers: usize,
    horizon: usize,
    /// `offsets[f-1]` is the global rank of the first `f`-failure plan;
    /// `offsets[horizon]` is the total plan count.
    offsets: Vec<u64>,
    /// Per failure count `f` (index `f-1`), the rank space of its block.
    spaces: Vec<ScenarioSpace>,
    entries: Vec<StoredPlan>,
    build_elapsed: Duration,
}

impl PlanStore {
    /// Solves every failure set of up to `horizon` of the engine's
    /// controllers and stores the plans dense in global-rank order. Runs
    /// on the engine's configured worker pool; the result is
    /// byte-identical at any job count.
    ///
    /// # Panics
    ///
    /// Panics if the store would not fit memory or a case fails to solve
    /// — both indicate bugs or an absurd horizon, not data errors.
    pub fn build(engine: &SweepEngine<'_>, horizon: usize) -> PlanStore {
        let _span = pm_obs::span("store.build");
        let t0 = std::time::Instant::now();
        let controllers = engine.network().controllers().len();
        let mut offsets = Vec::with_capacity(horizon + 1);
        let mut spaces = Vec::with_capacity(horizon);
        let mut entries = Vec::new();
        let mut buf = String::new();
        let mut next_rank = 0u64;
        for f in 1..=horizon {
            offsets.push(next_rank);
            let space = ScenarioSpace::new(controllers, f);
            let sel = ScenarioSelection::exhaustive(space);
            for solved in engine.solve_selection(&sel) {
                entries.push(StoredPlan::from_solved(next_rank, &solved, &mut buf));
                next_rank += 1;
            }
            spaces.push(ScenarioSpace::new(controllers, f));
        }
        offsets.push(next_rank);
        if pm_obs::enabled() {
            pm_obs::count("store.build.plans", next_rank);
        }
        PlanStore {
            controllers,
            horizon,
            offsets,
            spaces,
            entries,
            build_elapsed: t0.elapsed(),
        }
    }

    /// The number of controllers the store was built for.
    pub fn controllers(&self) -> usize {
        self.controllers
    }

    /// The precomputed failure horizon `k` (plans exist for `f ≤ k`).
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Total plans held.
    pub fn len(&self) -> u64 {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Whether the store holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wall-clock time of the offline build.
    pub fn build_elapsed(&self) -> Duration {
        self.build_elapsed
    }

    /// The plan at global rank `rank`, if within the store.
    pub fn get(&self, rank: u64) -> Option<&StoredPlan> {
        self.entries.get(usize::try_from(rank).ok()?)
    }

    /// The dense block of all `f`-failure plans (empty when `f` is 0 or
    /// beyond the horizon).
    pub fn block(&self, f: usize) -> &[StoredPlan] {
        if f == 0 || f > self.horizon {
            return &[];
        }
        let start = self.offsets[f - 1] as usize;
        let end = self.offsets[f] as usize;
        &self.entries[start..end]
    }

    /// The global rank of `failed`, or `None` when the set is empty, has
    /// duplicates, names an out-of-range controller, or lies beyond the
    /// horizon. Order-insensitive: the set is ranked, not the sequence.
    pub fn rank_of(&self, failed: &[ControllerId]) -> Option<u64> {
        let mut set = failed.to_vec();
        set.sort_unstable();
        set.dedup();
        if set.len() != failed.len() || set.is_empty() {
            return None;
        }
        let f = set.len();
        if f > self.horizon || set.last()?.index() >= self.controllers {
            return None;
        }
        Some(self.offsets[f - 1] + self.spaces[f - 1].rank(&set))
    }

    /// The stored plan for the failure set `failed`, if precomputed.
    pub fn lookup(&self, failed: &[ControllerId]) -> Option<&StoredPlan> {
        self.get(self.rank_of(failed)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::EvalOptions;
    use pm_sdwan::SdWanBuilder;

    fn store(jobs: usize, horizon: usize) -> (pm_sdwan::SdWan, PlanStore) {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let opts = EvalOptions {
            skip_optimal: true,
            jobs,
            ..Default::default()
        };
        let store = {
            let engine = SweepEngine::new(&net, opts);
            PlanStore::build(&engine, horizon)
        };
        (net, store)
    }

    #[test]
    fn dense_layout_covers_all_scenarios_up_to_the_horizon() {
        // ATT paper setup: 6 controllers → C(6,1) + C(6,2) = 21 plans.
        let (_net, store) = store(1, 2);
        assert_eq!(store.controllers(), 6);
        assert_eq!(store.horizon(), 2);
        assert_eq!(store.len(), 21);
        assert_eq!(store.block(1).len(), 6);
        assert_eq!(store.block(2).len(), 15);
        assert!(store.block(0).is_empty());
        assert!(store.block(3).is_empty());
        // Global ranks are the entry indices, and every entry agrees.
        for (i, entry) in (0..store.len()).map(|r| (r, store.get(r).unwrap())) {
            assert_eq!(entry.rank, i);
            assert_eq!(store.rank_of(&entry.failed), Some(i));
            assert!(!entry.plan_text.is_empty() || entry.offline_switches == 0);
        }
        assert!(store.get(21).is_none());
    }

    #[test]
    fn lookup_is_order_insensitive_and_rejects_bad_sets() {
        let (_net, store) = store(2, 2);
        let fwd = store.lookup(&[ControllerId(1), ControllerId(4)]).unwrap();
        let rev = store.lookup(&[ControllerId(4), ControllerId(1)]).unwrap();
        assert_eq!(fwd.rank, rev.rank);
        assert_eq!(fwd.plan_text, rev.plan_text);
        // Empty, duplicate, out-of-range and beyond-horizon sets miss.
        assert!(store.rank_of(&[]).is_none());
        assert!(store.rank_of(&[ControllerId(1), ControllerId(1)]).is_none());
        assert!(store.rank_of(&[ControllerId(9)]).is_none());
        assert!(store
            .rank_of(&[ControllerId(0), ControllerId(1), ControllerId(2)])
            .is_none());
    }

    #[test]
    fn stored_plans_match_fresh_single_case_solves_at_any_job_count() {
        let (net, serial) = store(1, 2);
        let (_net2, parallel) = store(8, 2);
        let engine = SweepEngine::new(
            &net,
            EvalOptions {
                skip_optimal: true,
                ..Default::default()
            },
        );
        assert_eq!(serial.len(), parallel.len());
        for rank in 0..serial.len() {
            let a = serial.get(rank).unwrap();
            let b = parallel.get(rank).unwrap();
            assert_eq!(a.plan_text, b.plan_text, "jobs must not change plans");
            let fresh = engine.solve_plan(&a.failed);
            assert_eq!(
                a.plan_text,
                fresh.plan.to_text(),
                "store entry {rank} must equal a cold solve"
            );
            assert_eq!(a.total_programmability, fresh.metrics.total_programmability);
            assert_eq!(a.min_programmability, fresh.metrics.min_programmability);
        }
    }
}
