//! Runs the four algorithms on failure cases and collects metrics.

use crate::events::EventLog;
use pm_core::{FmssmInstance, Optimal, Pg, Pm, PmError, PmWorkspace, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{ControllerId, FailureScenario, PlanMetrics, Programmability, RecoveryPlan, SdWan};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Evaluation options shared by the figure binaries, parsed from the
/// command line by [`EvalOptions::from_args`].
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Wall-clock budget per Optimal solve (`--opt-secs N`, default 20).
    pub optimal_time_limit: Duration,
    /// Skip the Optimal baseline entirely (`--skip-optimal`) — useful for
    /// quick looks; PM/PG/RetroFlow run in milliseconds.
    pub skip_optimal: bool,
    /// Directory to write per-figure CSV files into (`--csv DIR`).
    pub csv_dir: Option<std::path::PathBuf>,
    /// Worker threads for the failure sweep (`--jobs N`, default: all
    /// cores). Metric output is identical for every value; per-case
    /// wall-clock measurements contend for cores at higher counts.
    pub jobs: usize,
    /// Write a Chrome `trace_event` JSON file here at exit (`--trace
    /// FILE`). Implies enabling the [`pm_obs`] recorder.
    pub trace_path: Option<std::path::PathBuf>,
    /// Write the aggregated metrics JSON file here at exit (`--metrics
    /// FILE`). Implies enabling the [`pm_obs`] recorder.
    pub metrics_path: Option<std::path::PathBuf>,
    /// Write the metrics in Prometheus text exposition format here at
    /// exit (`--prom FILE`). Implies enabling the [`pm_obs`] recorder.
    pub prom_path: Option<std::path::PathBuf>,
    /// Stream structured per-case progress events while sweeping
    /// (`--events FILE` for a JSONL file, `--progress` for a rate-limited
    /// stderr line; either one activates the log). Does not require the
    /// recorder and never changes sweep results.
    pub events: Option<Arc<EventLog>>,
    /// Run only shard `i` of `m` of each sweep's scenario sequence
    /// (`--shard i/m`, 1-based). Shards partition the rank space
    /// contiguously, so the m shard outputs concatenated in shard order
    /// are byte-identical to the unsharded run.
    pub shard: Option<(usize, usize)>,
    /// Cap each sweep at this many scenarios (`--max-scenarios N`). When
    /// the space is larger, ranks are drawn without replacement from a
    /// [`pm_topo::rng::DetRng`] seeded with [`EvalOptions::seed`]; when it
    /// already fits the budget, the sweep stays exhaustive.
    pub max_scenarios: Option<u64>,
    /// Seed for scenario subsampling (`--seed N`, default 42). Unused
    /// unless `--max-scenarios` actually forces a sample.
    pub seed: u64,
    /// Scenarios a worker claims and materializes per dispatch round
    /// (`--batch N`, default 32). Live scenario storage during a
    /// streaming sweep is bounded by `jobs × batch` entries.
    pub batch: usize,
    /// Eagerly warm the whole topology cache when the engine is built
    /// (default). Scale binaries switch this off so only the
    /// shortest-path state the sweep actually touches is computed.
    pub eager_warm: bool,
    /// Walk each worker's claimed scenario blocks incrementally (default):
    /// consecutive colex-adjacent failure sets are patched in place with
    /// [`pm_sdwan::FailureScenario::apply_delta`] and the PM heuristic
    /// reuses a per-worker workspace, instead of rebuilding everything per
    /// case. Results are byte-identical either way (`--no-incremental`
    /// forces the cold recompute path, e.g. to verify exactly that).
    pub incremental: bool,
    /// Serve live telemetry over HTTP while the run is in flight
    /// (`--serve ADDR`, e.g. `127.0.0.1:9464`; port `0` picks an
    /// ephemeral port, printed to stderr). Implies the recorder and a
    /// sampler at the default interval. Serving only reads recorder
    /// snapshots, so results never change.
    pub serve: Option<String>,
    /// Interval-snapshot the recorder every this many milliseconds
    /// (`--sample-interval MS`; `--serve` implies 250). Feeds the
    /// `timeseries` section of the metrics JSON and `/timeseries.json`.
    pub sample_interval_ms: Option<u64>,
    /// Arm the flight recorder and write its dump here on panic
    /// (`--flight FILE`): the last K spans per thread and counter deltas,
    /// for post-mortem debugging at scale without a full trace.
    pub flight_path: Option<std::path::PathBuf>,
    /// Run the span-stack sampling profiler for the duration of the run
    /// and write the folded-stack profile here at exit (`--profile
    /// FILE`) — Brendan Gregg's format, ready for `inferno-flamegraph`,
    /// `flamegraph.pl`, speedscope or `pmctl obs flame`. Implies the
    /// recorder; sampling never changes results.
    pub profile_path: Option<std::path::PathBuf>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            optimal_time_limit: Duration::from_secs(20),
            skip_optimal: false,
            csv_dir: None,
            jobs: crate::par::default_jobs(),
            trace_path: None,
            metrics_path: None,
            prom_path: None,
            events: None,
            shard: None,
            max_scenarios: None,
            seed: 42,
            batch: 32,
            eager_warm: true,
            incremental: true,
            serve: None,
            sample_interval_ms: None,
            flight_path: None,
            profile_path: None,
        }
    }
}

/// RAII guard for the live telemetry plane: the interval sampler, the
/// HTTP listener and the armed flight recorder, whichever of them the
/// options requested. Hold it for the duration of the measured work —
/// dropping it takes the sampler's final interval and closes the
/// listener. Obtained from [`EvalOptions::start_telemetry_plane`].
#[derive(Debug, Default)]
pub struct TelemetryPlane {
    // Declaration order is drop order: stop serving before the profiler
    // and sampler take their final snapshots, so the last scrape a
    // client sees is never mid-teardown.
    server: Option<pm_obs::MetricsServer>,
    profiler: Option<pm_obs::Profiler>,
    sampler: Option<pm_obs::Sampler>,
}

impl TelemetryPlane {
    /// The listener's bound address, when `--serve` was given — the way
    /// to learn the real port after binding port 0.
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(|s| s.local_addr())
    }

    /// Whether any part of the plane (sampler, profiler or listener) is
    /// live.
    pub fn is_active(&self) -> bool {
        self.server.is_some() || self.profiler.is_some() || self.sampler.is_some()
    }
}

impl EvalOptions {
    /// Parses the common flags from `std::env::args`. Unknown flags abort
    /// with a usage message.
    pub fn from_args() -> Self {
        let mut rest = Vec::new();
        let opts = Self::from_args_partial(std::env::args().skip(1), &mut rest);
        if let Some(other) = rest.first() {
            eprintln!("unknown flag {other}; try --help");
            std::process::exit(2);
        }
        opts
    }

    /// Parses the common flags out of `args`, pushing anything it does not
    /// recognize onto `rest` in order — binaries with extra flags (e.g.
    /// `scale_sweep`) parse those from `rest` afterwards.
    pub fn from_args_partial(args: impl Iterator<Item = String>, rest: &mut Vec<String>) -> Self {
        let mut opts = EvalOptions::default();
        let mut events_path: Option<std::path::PathBuf> = None;
        let mut progress = false;
        let mut args = args;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--opt-secs" => {
                    let v = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--opt-secs needs an integer argument");
                        std::process::exit(2);
                    });
                    opts.optimal_time_limit = Duration::from_secs(v);
                }
                "--skip-optimal" => opts.skip_optimal = true,
                "--jobs" => {
                    let v: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--jobs needs a positive integer argument");
                        std::process::exit(2);
                    });
                    if v == 0 {
                        eprintln!("--jobs needs a positive integer argument");
                        std::process::exit(2);
                    }
                    opts.jobs = v;
                }
                "--csv" => {
                    let dir = args.next().unwrap_or_else(|| {
                        eprintln!("--csv needs a directory argument");
                        std::process::exit(2);
                    });
                    opts.csv_dir = Some(dir.into());
                }
                "--trace" => {
                    let file = args.next().unwrap_or_else(|| {
                        eprintln!("--trace needs a file argument");
                        std::process::exit(2);
                    });
                    opts.trace_path = Some(file.into());
                    pm_obs::enable();
                }
                "--metrics" => {
                    let file = args.next().unwrap_or_else(|| {
                        eprintln!("--metrics needs a file argument");
                        std::process::exit(2);
                    });
                    opts.metrics_path = Some(file.into());
                    pm_obs::enable();
                }
                "--prom" => {
                    let file = args.next().unwrap_or_else(|| {
                        eprintln!("--prom needs a file argument");
                        std::process::exit(2);
                    });
                    opts.prom_path = Some(file.into());
                    pm_obs::enable();
                }
                "--events" => {
                    let file = args.next().unwrap_or_else(|| {
                        eprintln!("--events needs a file argument");
                        std::process::exit(2);
                    });
                    events_path = Some(file.into());
                }
                "--progress" => progress = true,
                "--shard" => {
                    let spec = args.next().unwrap_or_else(|| {
                        eprintln!("--shard needs an i/m argument, e.g. --shard 2/4");
                        std::process::exit(2);
                    });
                    opts.shard = Some(parse_shard(&spec).unwrap_or_else(|| {
                        eprintln!("--shard needs i/m with 1 <= i <= m, got {spec}");
                        std::process::exit(2);
                    }));
                }
                "--max-scenarios" => {
                    let v: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--max-scenarios needs an integer argument");
                        std::process::exit(2);
                    });
                    if v == 0 {
                        eprintln!("--max-scenarios needs a positive integer argument");
                        std::process::exit(2);
                    }
                    opts.max_scenarios = Some(v);
                }
                "--seed" => {
                    let v: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--seed needs an integer argument");
                        std::process::exit(2);
                    });
                    opts.seed = v;
                }
                "--batch" => {
                    let v: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--batch needs a positive integer argument");
                        std::process::exit(2);
                    });
                    if v == 0 {
                        eprintln!("--batch needs a positive integer argument");
                        std::process::exit(2);
                    }
                    opts.batch = v;
                }
                "--no-incremental" => opts.incremental = false,
                "--serve" => {
                    let addr = args.next().unwrap_or_else(|| {
                        eprintln!("--serve needs an ADDR argument, e.g. --serve 127.0.0.1:9464");
                        std::process::exit(2);
                    });
                    opts.serve = Some(addr);
                    pm_obs::enable();
                }
                "--sample-interval" => {
                    let v: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--sample-interval needs a positive integer (milliseconds)");
                        std::process::exit(2);
                    });
                    if v == 0 {
                        eprintln!("--sample-interval needs a positive integer (milliseconds)");
                        std::process::exit(2);
                    }
                    opts.sample_interval_ms = Some(v);
                    pm_obs::enable();
                }
                "--flight" => {
                    let file = args.next().unwrap_or_else(|| {
                        eprintln!("--flight needs a file argument");
                        std::process::exit(2);
                    });
                    opts.flight_path = Some(file.into());
                }
                "--profile" => {
                    let file = args.next().unwrap_or_else(|| {
                        eprintln!("--profile needs a file argument");
                        std::process::exit(2);
                    });
                    opts.profile_path = Some(file.into());
                    pm_obs::enable();
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: [--opt-secs N] [--skip-optimal] [--jobs N] [--csv DIR]\n\
                         \x20        [--shard i/m] [--max-scenarios N] [--seed N] [--batch N]\n\
                         \x20        [--trace FILE] [--metrics FILE] [--prom FILE]\n\
                         \x20        [--events FILE] [--progress] [--no-incremental]\n\
                         \x20        [--serve ADDR] [--sample-interval MS] [--flight FILE]\n\
                         \x20        [--profile FILE]\n\
                         regenerates one of the paper's evaluation artifacts;\n\
                         --shard runs only the i-th of m contiguous slices of each sweep\n\
                         --max-scenarios caps a sweep, sampling ranks without replacement\n\
                         --seed seeds the scenario sample (default 42)\n\
                         --batch sets scenarios materialized per worker dispatch (default 32)\n\
                         --trace writes a Chrome trace_event JSON (chrome://tracing, Perfetto)\n\
                         --metrics writes aggregated counters/histograms/span totals as JSON\n\
                         --prom writes the same metrics in Prometheus text exposition format\n\
                         --events streams per-case progress as JSON lines while sweeping\n\
                         --progress prints a rate-limited progress line to stderr\n\
                         --no-incremental rebuilds every scenario from scratch instead of\n\
                         \x20 patching the previous one in place (results are identical)\n\
                         --serve exposes /metrics, /metrics.json, /timeseries.json and\n\
                         \x20 /healthz over HTTP while the run is in flight (port 0 = ephemeral)\n\
                         --sample-interval snapshots interval deltas every MS milliseconds\n\
                         \x20 (--serve implies 250)\n\
                         --flight arms the flight recorder; its ring dump is written to FILE\n\
                         \x20 if the process panics\n\
                         --profile samples the live span stacks and writes a folded-stack\n\
                         \x20 flamegraph profile to FILE (inferno/speedscope/pmctl obs flame)"
                    );
                    std::process::exit(0);
                }
                _ => rest.push(a),
            }
        }
        if events_path.is_some() || progress {
            match EventLog::create(events_path.as_deref(), progress) {
                Ok(log) => opts.events = Some(Arc::new(log)),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        opts
    }

    /// Starts whichever parts of the live telemetry plane the options ask
    /// for — the flight recorder's panic hook (`--flight`), the interval
    /// sampler (`--sample-interval`, implied at 250 ms by `--serve`), the
    /// span-stack profiler (`--profile`) and the HTTP listener
    /// (`--serve`) — and returns the guard that keeps them alive. Call
    /// once, before the measured work, and hold the guard until after
    /// [`export_observability`](Self::export_observability) so exported
    /// metrics include the captured time series and profile. With none of
    /// the flags set this is free and returns an inert guard.
    ///
    /// A `--serve` address that fails to bind aborts the run: silently
    /// continuing without the endpoint the user asked to watch would be
    /// worse than failing fast.
    pub fn start_telemetry_plane(&self) -> TelemetryPlane {
        let mut plane = TelemetryPlane::default();
        if let Some(path) = &self.flight_path {
            pm_obs::flight::arm_panic_hook(path.clone());
        }
        if self.profile_path.is_some() {
            plane.profiler = Some(pm_obs::Profiler::start(pm_obs::ProfilerConfig::default()));
        }
        if let Some(ms) = self.sample_interval_ms.or(self.serve.as_ref().map(|_| 250)) {
            plane.sampler = Some(pm_obs::Sampler::start(pm_obs::SamplerConfig {
                interval: Duration::from_millis(ms),
                ..Default::default()
            }));
        }
        if let Some(addr) = &self.serve {
            match pm_obs::MetricsServer::serve(addr.as_str()) {
                Ok(server) => {
                    eprintln!(
                        "serving telemetry on http://{}/metrics",
                        server.local_addr()
                    );
                    plane.server = Some(server);
                }
                Err(e) => {
                    eprintln!("cannot serve telemetry on {addr}: {e}");
                    std::process::exit(1);
                }
            }
        }
        plane
    }

    /// Writes the `--trace` / `--metrics` / `--prom` files from the
    /// recorder's current state and flushes the `--events` log, for
    /// whichever flags were given. Call once, after all measured work; a
    /// no-op when none are set.
    ///
    /// Failures are reported on stderr — naming the offending path — but
    /// do not abort: telemetry export must never take down a finished run.
    pub fn export_observability(&self) {
        fn export(kind: &str, path: &std::path::Path, contents: &str) {
            match pm_obs::write_artifact(kind, path, contents) {
                Ok(()) => eprintln!("{kind} written to {}", path.display()),
                Err(e) => eprintln!("warning: {e}"),
            }
        }
        if let Some(path) = &self.trace_path {
            export("trace", path, &pm_obs::chrome_trace_json());
        }
        if let Some(path) = &self.metrics_path {
            export("metrics", path, &pm_obs::metrics_json());
        }
        if let Some(path) = &self.prom_path {
            export("prometheus metrics", path, &pm_obs::prometheus_text());
        }
        if let Some(path) = &self.profile_path {
            export("profile", path, &pm_obs::prof::folded_text());
        }
        if let Some(events) = &self.events {
            if let Err(e) = events.close() {
                eprintln!("warning: {e}");
            }
        }
    }
}

/// Parses a `--shard` spec of the form `i/m` (1-based), rejecting
/// `i = 0`, `m = 0` and `i > m`.
pub fn parse_shard(spec: &str) -> Option<(usize, usize)> {
    let (i, m) = spec.split_once('/')?;
    let i: usize = i.trim().parse().ok()?;
    let m: usize = m.trim().parse().ok()?;
    (i >= 1 && i <= m).then_some((i, m))
}

/// One algorithm's outcome on one failure case.
#[derive(Debug, Clone)]
pub struct AlgoRun {
    /// Algorithm display name.
    pub name: &'static str,
    /// All evaluation metrics.
    pub metrics: PlanMetrics,
    /// Wall-clock time of the recovery computation.
    pub elapsed: Duration,
    /// `Some(true)` when this is the exact solver and it proved optimality
    /// within its budget; `Some(false)` when it returned a best-effort
    /// incumbent; `None` for heuristics.
    pub proved_optimal: Option<bool>,
    /// Total control propagation delay of the plan (left side of Eq. (5)).
    pub total_delay: f64,
}

/// All algorithm runs for one failure case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The failed controllers.
    pub failed: Vec<ControllerId>,
    /// Human-readable label using the controllers' node ids, e.g.
    /// "(13,20)" — the paper labels cases this way.
    pub label: String,
    /// Per-algorithm outcomes, in a fixed order: RetroFlow, PM, PG
    /// [, Optimal].
    pub runs: Vec<AlgoRun>,
}

impl CaseResult {
    /// The run for `name`, if present.
    pub fn run(&self, name: &str) -> Option<&AlgoRun> {
        self.runs.iter().find(|r| r.name == name)
    }
}

/// Labels a failure case by the node ids of the failed controllers, the
/// way the paper writes "(13, 20)".
pub fn case_label(net: &SdWan, failed: &[ControllerId]) -> String {
    let nodes: Vec<String> = failed
        .iter()
        .map(|&c| net.controllers()[c.index()].node.index().to_string())
        .collect();
    format!("({})", nodes.join(","))
}

/// Runs RetroFlow, PM, PG and (optionally) Optimal on one failure case.
///
/// # Panics
///
/// Panics if the failure scenario is invalid or an algorithm produces an
/// invalid plan — both indicate bugs, not data errors.
pub fn run_case(
    net: &SdWan,
    prog: &Programmability,
    failed: &[ControllerId],
    opts: &EvalOptions,
) -> CaseResult {
    let scenario = net.fail(failed).expect("valid failure case");
    let inst = FmssmInstance::new(&scenario, prog);
    CaseResult {
        failed: failed.to_vec(),
        label: case_label(net, failed),
        runs: run_algorithms(&scenario, prog, &inst, opts, &mut AlgoWorkspace::default()),
    }
}

/// Per-worker allocation reuse across the cases of a sweep. Plans are
/// byte-identical whether a workspace is fresh or carried over — only the
/// buffers survive, never decisions.
#[derive(Debug, Default)]
pub(crate) struct AlgoWorkspace {
    /// The PM heuristic's bitmap/accumulator buffers.
    pub(crate) pm: PmWorkspace,
}

/// Times and validates each algorithm on an already-built instance; shared
/// by [`run_case`] and the parallel [`crate::SweepEngine`].
pub(crate) fn run_algorithms(
    scenario: &FailureScenario<'_>,
    prog: &Programmability,
    inst: &FmssmInstance<'_, '_>,
    opts: &EvalOptions,
    ws: &mut AlgoWorkspace,
) -> Vec<AlgoRun> {
    // One measured, validated heuristic run. `recover` is a closure rather
    // than the trait method so PM can run inside the shared workspace; the
    // name/span/metrics handling stays common to all three.
    fn heuristic_run(
        algo: &dyn RecoveryAlgorithm,
        scenario: &FailureScenario<'_>,
        prog: &Programmability,
        recover: impl FnOnce() -> Result<RecoveryPlan, PmError>,
    ) -> AlgoRun {
        let algo_span = pm_obs::span_labeled("bench.algo", algo.name());
        let start = Instant::now();
        let plan = recover().expect("heuristics always produce a plan");
        let elapsed = start.elapsed();
        drop(algo_span);
        plan.validate(scenario, prog, algo.is_flow_level())
            .expect("plan must be valid");
        let metrics = PlanMetrics::compute(scenario, prog, &plan, algo.middle_layer_ms());
        let total_delay = plan.total_control_delay(scenario);
        AlgoRun {
            name: algo.name(),
            metrics,
            elapsed,
            proved_optimal: None,
            total_delay,
        }
    }

    let mut runs = Vec::new();
    let retroflow = RetroFlow::new();
    runs.push(heuristic_run(&retroflow, scenario, prog, || {
        retroflow.recover(inst)
    }));
    let pm = Pm::new();
    runs.push(heuristic_run(&pm, scenario, prog, || {
        pm.recover_in(inst, &mut ws.pm)
    }));
    let pg = Pg::new();
    runs.push(heuristic_run(&pg, scenario, prog, || pg.recover(inst)));

    if !opts.skip_optimal {
        let _algo_span = pm_obs::span_labeled("bench.algo", "Optimal");
        let solver = Optimal::new().time_limit(opts.optimal_time_limit);
        let out = solver
            .solve_detailed(inst)
            .expect("warm start guarantees an incumbent");
        out.plan
            .validate(scenario, prog, false)
            .expect("optimal plan must be valid");
        let metrics = PlanMetrics::compute(scenario, prog, &out.plan, 0.0);
        let total_delay = out.plan.total_control_delay(scenario);
        runs.push(AlgoRun {
            name: "Optimal",
            metrics,
            elapsed: out.elapsed,
            proved_optimal: Some(out.proved_optimal()),
            total_delay,
        });
    }

    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_sdwan::SdWanBuilder;

    #[test]
    fn runs_all_algorithms_on_a_case() {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let prog = Programmability::compute(&net);
        let opts = EvalOptions {
            optimal_time_limit: Duration::from_secs(2),
            ..Default::default()
        };
        let case = run_case(&net, &prog, &[ControllerId(4)], &opts);
        assert_eq!(case.runs.len(), 4);
        assert!(case.run("PM").is_some());
        assert!(case.run("Optimal").is_some());
        assert_eq!(case.label, "(20)");
    }

    #[test]
    fn skip_optimal_runs_three() {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        let prog = Programmability::compute(&net);
        let opts = EvalOptions {
            skip_optimal: true,
            ..Default::default()
        };
        let case = run_case(&net, &prog, &[ControllerId(0)], &opts);
        assert_eq!(case.runs.len(), 3);
        assert!(case.run("Optimal").is_none());
    }

    #[test]
    fn shard_spec_parsing() {
        assert_eq!(parse_shard("1/1"), Some((1, 1)));
        assert_eq!(parse_shard("2/4"), Some((2, 4)));
        assert_eq!(parse_shard(" 3 / 3 "), Some((3, 3)));
        assert_eq!(parse_shard("0/4"), None, "1-based index");
        assert_eq!(parse_shard("5/4"), None, "index beyond shard count");
        assert_eq!(parse_shard("2"), None);
        assert_eq!(parse_shard("a/b"), None);
        assert_eq!(parse_shard("1/0"), None);
    }

    #[test]
    fn partial_parse_leaves_unknown_flags_in_order() {
        let args = [
            "--nodes",
            "100",
            "--skip-optimal",
            "--shard",
            "1/2",
            "--controllers",
            "8",
        ];
        let mut rest = Vec::new();
        let opts = EvalOptions::from_args_partial(args.iter().map(|s| s.to_string()), &mut rest);
        assert!(opts.skip_optimal);
        assert_eq!(opts.shard, Some((1, 2)));
        assert_eq!(rest, vec!["--nodes", "100", "--controllers", "8"]);
    }

    #[test]
    fn label_uses_node_ids() {
        let net = SdWanBuilder::att_paper_setup().build().unwrap();
        assert_eq!(
            case_label(&net, &[ControllerId(3), ControllerId(4)]),
            "(13,20)"
        );
    }
}
