//! Text-table and CSV rendering for the evaluation binaries.

use std::fmt::Write as _;
use std::path::Path;

/// Renders an aligned text table with a header row.
///
/// # Example
///
/// ```
/// let t = pm_bench::report::render_table(
///     &["case", "PM"],
///     &[vec!["(13,20)".into(), "315%".into()]],
/// );
/// assert!(t.contains("(13,20)"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{:<width$}", cell, width = widths[i]);
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    write_row(&mut out, &header_cells);
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Writes a CSV file (header + rows) into `dir/name.csv`, creating the
/// directory if needed. Errors are reported to stderr but not fatal — the
/// text tables on stdout are the primary artifact.
pub fn write_csv(dir: &Path, name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut body = headers.join(",");
    body.push('\n');
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|cell| {
                if cell.contains(',') || cell.contains('"') {
                    format!("\"{}\"", cell.replace('"', "\"\""))
                } else {
                    cell.clone()
                }
            })
            .collect();
        body.push_str(&escaped.join(","));
        body.push('\n');
    }
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(dir.join(format!("{name}.csv")), body))
    {
        eprintln!("warning: could not write {name}.csv: {e}");
    }
}

/// Formats a ratio as a percentage with no decimals ("315%").
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Formats a [`pm_sdwan::BoxStats`] as "min/q1/med/q3/max".
pub fn box_summary(b: Option<pm_sdwan::BoxStats>) -> String {
    match b {
        None => "-".into(),
        Some(b) => format!(
            "{:.0}/{:.0}/{:.1}/{:.0}/{:.0}",
            b.min, b.q1, b.median, b.q3, b.max
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "bbbb"],
            &[
                vec!["xxxx".into(), "y".into()],
                vec!["z".into(), "w".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal length after trimming trailing spaces?
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn pct_rounds() {
        assert_eq!(pct(3.149), "315%");
        assert_eq!(pct(1.0), "100%");
    }

    #[test]
    fn csv_escapes_commas() {
        let dir = std::env::temp_dir().join("pm_bench_csv_test");
        write_csv(
            &dir,
            "t",
            &["a", "b"],
            &[vec!["x,y".into(), "q\"uote".into()]],
        );
        let body = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert!(body.contains("\"x,y\""));
        assert!(body.contains("\"q\"\"uote\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn box_summary_formats() {
        let b = pm_sdwan::BoxStats::from_values(&[1.0, 2.0, 3.0]);
        // q1 = 1.5 and q3 = 2.5 round half-to-even under {:.0}.
        assert_eq!(box_summary(b), "1/2/2.0/2/3".to_string());
        assert_eq!(box_summary(None), "-");
    }
}
