//! Rank-indexed enumeration of the controller-failure scenario space.
//!
//! A sweep over f simultaneous failures out of n controllers visits the
//! C(n, f) f-subsets of the controller set. The paper's ATT setup keeps
//! that tiny (C(6, 3) = 20), but production-scale SD-WANs do not:
//! C(64, 4) ≈ 635k, and materializing every subset as a `Vec` before
//! dispatch costs memory proportional to the whole space. A
//! [`ScenarioSpace`] instead treats the space as the integer range
//! `0..C(n, f)` under the **colexicographic order** and converts between
//! ranks and subsets on demand:
//!
//! * [`ScenarioSpace::rank`] — subset → rank, O(f) table lookups;
//! * [`ScenarioSpace::unrank`] — rank → subset, O(f log n) binary
//!   searches over a precomputed Pascal table.
//!
//! In colex order a subset `{c₀ < c₁ < …}` has rank
//! `Σᵢ C(cᵢ, i+1)` — subsets sort by their largest element first, so the
//! space for n controllers is a prefix of the space for n+1. Scenario
//! generation becomes a pure function of an integer index, which is what
//! makes streaming dispatch, deterministic sharding
//! ([`ScenarioSelection::shard_range`]) and seeded subsampling
//! ([`ScenarioSelection::sampled`]) composable: they all operate on plain
//! integer ranges and only pay [`ScenarioSpace::unrank`] for scenarios
//! actually executed.

use pm_sdwan::ControllerId;
use pm_topo::rng::DetRng;
use std::ops::Range;

/// Computes C(n, k), saturating at `u64::MAX`.
///
/// # Example
///
/// ```
/// use pm_bench::scenario_space::binomial;
/// assert_eq!(binomial(6, 3), 20);
/// assert_eq!(binomial(64, 4), 635_376);
/// assert_eq!(binomial(3, 5), 0);
/// assert_eq!(binomial(5, 0), 1);
/// ```
pub fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        // acc * (n - i) / (i + 1) stays integral at every step; do the
        // multiply in u128 to saturate instead of overflowing.
        let wide = acc as u128 * (n - i) as u128 / (i + 1) as u128;
        acc = u64::try_from(wide).unwrap_or(u64::MAX);
        if acc == u64::MAX {
            return u64::MAX;
        }
    }
    acc
}

/// The space of all f-subsets of n controllers, indexed by colex rank.
///
/// # Example
///
/// ```
/// use pm_bench::ScenarioSpace;
/// use pm_sdwan::ControllerId;
///
/// let space = ScenarioSpace::new(6, 3);
/// assert_eq!(space.count(), 20);
/// // Colex rank 0 is always {0, 1, …, f-1}.
/// assert_eq!(
///     space.unrank(0),
///     vec![ControllerId(0), ControllerId(1), ControllerId(2)]
/// );
/// // rank and unrank are inverses over the whole range.
/// for r in 0..space.count() {
///     assert_eq!(space.rank(&space.unrank(r)), r);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSpace {
    n: usize,
    f: usize,
    /// Pascal table, row-major: `binom[c * (f + 1) + j] = C(c, j)` for
    /// `c ∈ 0..=n`, `j ∈ 0..=f`, saturating at `u64::MAX`. Saturated
    /// cells are harmless: every value `rank`/`unrank` actually reads is
    /// bounded by `count()`, which is checked to be exact.
    binom: Vec<u64>,
    count: u64,
}

impl ScenarioSpace {
    /// Builds the space of `f`-subsets of `n` controllers.
    ///
    /// Degenerate shapes follow the binomial coefficient: `f = 0` gives a
    /// single empty scenario, `f > n` gives an empty space.
    ///
    /// # Panics
    ///
    /// Panics if `C(n, f)` itself exceeds `u64::MAX` — the rank space
    /// must fit an integer. Every `n ≤ 64` fits for any `f`.
    pub fn new(n: usize, f: usize) -> Self {
        let count = binomial(n, f);
        assert!(
            count < u64::MAX || binomial_is_exact(n, f),
            "scenario space C({n}, {f}) exceeds u64"
        );
        let cols = f + 1;
        let mut binom = vec![0u64; (n + 1) * cols];
        for c in 0..=n {
            binom[c * cols] = 1;
            for j in 1..=f.min(c) {
                let a = binom[(c - 1) * cols + j - 1];
                let b = binom[(c - 1) * cols + j];
                binom[c * cols + j] = a.saturating_add(b);
            }
        }
        ScenarioSpace { n, f, binom, count }
    }

    /// The number of controllers `n`.
    pub fn controllers(&self) -> usize {
        self.n
    }

    /// The subset size `f` (simultaneous failures).
    pub fn failures(&self) -> usize {
        self.f
    }

    /// The size of the rank space, `C(n, f)`.
    pub fn count(&self) -> u64 {
        self.count
    }

    #[inline]
    fn c(&self, c: usize, j: usize) -> u64 {
        self.binom[c * (self.f + 1) + j]
    }

    /// The colex rank of `subset`: `Σᵢ C(cᵢ, i+1)`.
    ///
    /// # Panics
    ///
    /// Panics if `subset` is not a strictly ascending list of `f`
    /// controller ids below `n` — rank is only defined on canonical
    /// subsets.
    pub fn rank(&self, subset: &[ControllerId]) -> u64 {
        assert_eq!(
            subset.len(),
            self.f,
            "rank of a {}-subset in a {}-failure space",
            subset.len(),
            self.f
        );
        let mut r = 0u64;
        let mut prev = None;
        for (i, &c) in subset.iter().enumerate() {
            let c = c.index();
            assert!(c < self.n, "controller C{c} out of range (n = {})", self.n);
            assert!(
                prev.map_or(true, |p| p < c),
                "subset must be strictly ascending"
            );
            prev = Some(c);
            r += self.c(c, i + 1);
        }
        r
    }

    /// The subset at colex rank `rank`; inverse of [`ScenarioSpace::rank`].
    ///
    /// # Panics
    ///
    /// Panics if `rank >= count()`.
    pub fn unrank(&self, rank: u64) -> Vec<ControllerId> {
        let mut out = Vec::with_capacity(self.f);
        self.unrank_into(rank, &mut out);
        out
    }

    /// [`ScenarioSpace::unrank`] into a reusable buffer (cleared first) —
    /// the streaming dispatch path calls this once per executed scenario.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= count()`.
    pub fn unrank_into(&self, rank: u64, out: &mut Vec<ControllerId>) {
        assert!(
            rank < self.count,
            "rank {rank} out of range (count = {})",
            self.count
        );
        out.clear();
        out.resize(self.f, ControllerId(0));
        let mut r = rank;
        // Greedy from the largest element down: position j-1 holds the
        // largest c with C(c, j) <= the remaining rank.
        let mut hi = self.n; // exclusive candidate bound (strictly descending)
        for j in (1..=self.f).rev() {
            let (mut lo, mut up) = (j - 1, hi); // C(j-1, j) = 0 <= r always
            while up - lo > 1 {
                let mid = lo + (up - lo) / 2;
                if self.c(mid, j) <= r {
                    lo = mid;
                } else {
                    up = mid;
                }
            }
            out[j - 1] = ControllerId(lo);
            r -= self.c(lo, j);
            hi = lo;
        }
        debug_assert_eq!(r, 0, "greedy unrank consumes the whole rank");
    }
}

/// `true` when C(n, k) is exactly representable in u64 (no saturation).
fn binomial_is_exact(n: usize, k: usize) -> bool {
    if k > n {
        return true;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return false;
        }
    }
    true
}

/// An unbiased draw from `0..bound` (Lemire's multiply-shift rejection).
fn uniform_below(rng: &mut DetRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(bound);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Exactly `max` distinct indices from `0..pool`, drawn without
/// replacement by Floyd's algorithm from a [`DetRng`] seeded with `seed`
/// and returned in ascending order. Shared by the scenario-rank and
/// timeline-id selections so both sample identically.
///
/// Callers must ensure `max < pool`; oversized budgets fall back to the
/// exhaustive range before reaching this.
pub(crate) fn floyd_sample(pool: u64, max: u64, seed: u64) -> Vec<u64> {
    debug_assert!(max < pool);
    // Floyd's algorithm: exactly `max` distinct indices in `max` draws,
    // no rejection loop however close `max` is to the pool size.
    let want = usize::try_from(max).expect("sample budget fits usize");
    let mut rng = DetRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(want);
    let mut picks = Vec::with_capacity(want);
    for j in (pool - max)..pool {
        let t = uniform_below(&mut rng, j + 1);
        let pick = if seen.insert(t) { t } else { j };
        if pick != t {
            seen.insert(pick);
        }
        picks.push(pick);
    }
    picks.sort_unstable();
    debug_assert!(picks.windows(2).all(|w| w[0] < w[1]));
    picks
}

/// The position range shard `i` of `m` covers in a sequence of `len`
/// positions (1-based `i`, the `--shard i/m` convention): contiguous,
/// disjoint, covering, sizes differing by at most one. `shard = None`
/// means the whole range. Shared by scenario and timeline selections.
///
/// # Panics
///
/// Panics if `i` is not in `1..=m` or `m == 0`.
pub(crate) fn slice_range(len: u64, shard: Option<(usize, usize)>) -> Range<u64> {
    let Some((i, m)) = shard else {
        return 0..len;
    };
    assert!(m >= 1 && i >= 1 && i <= m, "--shard {i}/{m} out of range");
    let (i, m) = (i as u128, m as u128);
    let lo = (u128::from(len) * (i - 1) / m) as u64;
    let hi = (u128::from(len) * i / m) as u64;
    lo..hi
}

/// Which scenarios of a [`ScenarioSpace`] a sweep executes: either the
/// exhaustive rank range or a seeded sample of it, in ascending rank
/// order either way.
///
/// Positions `0..len()` index the selection; sharding slices that
/// position range ([`ScenarioSelection::shard_range`]), so m shards
/// concatenated in shard order visit exactly the unsharded sequence.
#[derive(Debug, Clone)]
pub struct ScenarioSelection {
    space: ScenarioSpace,
    /// Sampled ranks in ascending order; `None` means exhaustive.
    ranks: Option<Vec<u64>>,
}

impl ScenarioSelection {
    /// Selects every scenario of `space`.
    pub fn exhaustive(space: ScenarioSpace) -> Self {
        ScenarioSelection { space, ranks: None }
    }

    /// Selects at most `max` scenarios of `space`, drawn without
    /// replacement by a [`DetRng`] seeded with `seed` and kept in
    /// ascending rank order.
    ///
    /// When `max >= count()` the budget is not a constraint and the
    /// selection falls back to the exhaustive range — sampling-without-
    /// replacement must never spin on an exhausted pool.
    pub fn sampled(space: ScenarioSpace, max: u64, seed: u64) -> Self {
        if max >= space.count() {
            return ScenarioSelection::exhaustive(space);
        }
        let picks = floyd_sample(space.count(), max, seed);
        ScenarioSelection {
            space,
            ranks: Some(picks),
        }
    }

    /// The underlying scenario space.
    pub fn space(&self) -> &ScenarioSpace {
        &self.space
    }

    /// `true` when this is a strict subsample of the space.
    pub fn is_sampled(&self) -> bool {
        self.ranks.is_some()
    }

    /// How many scenarios the selection contains.
    pub fn len(&self) -> u64 {
        match &self.ranks {
            Some(r) => r.len() as u64,
            None => self.space.count(),
        }
    }

    /// `true` when the selection contains no scenarios.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The colex rank executed at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    pub fn rank_at(&self, pos: u64) -> u64 {
        match &self.ranks {
            Some(r) => r[usize::try_from(pos).expect("position fits usize")],
            None => {
                assert!(pos < self.space.count(), "position {pos} out of range");
                pos
            }
        }
    }

    /// The failure scenario at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    pub fn scenario_at(&self, pos: u64) -> Vec<ControllerId> {
        self.space.unrank(self.rank_at(pos))
    }

    /// [`ScenarioSelection::scenario_at`] into a reusable buffer.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`.
    pub fn scenario_at_into(&self, pos: u64, out: &mut Vec<ControllerId>) {
        self.space.unrank_into(self.rank_at(pos), out);
    }

    /// The position range shard `i` of `m` executes (1-based `i`, the
    /// `--shard i/m` convention). Shards are contiguous, disjoint, cover
    /// the selection, and differ in size by at most one scenario;
    /// `shard = None` means the whole range.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not in `1..=m` or `m == 0` — flag parsing
    /// rejects those shapes before they get here.
    pub fn shard_range(&self, shard: Option<(usize, usize)>) -> Range<u64> {
        slice_range(self.len(), shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::combinations;

    #[test]
    fn binomial_edges_and_saturation() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(6, 6), 1);
        assert_eq!(binomial(6, 7), 0);
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
        assert_eq!(binomial(128, 64), u64::MAX, "saturates, does not wrap");
    }

    #[test]
    fn colex_rank_zero_is_the_identity_prefix() {
        let space = ScenarioSpace::new(7, 4);
        assert_eq!(space.count(), 35);
        assert_eq!(
            space.unrank(0),
            (0..4).map(ControllerId).collect::<Vec<_>>()
        );
        assert_eq!(
            space.unrank(space.count() - 1),
            (3..7).map(ControllerId).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rank_unrank_roundtrip_covers_the_space() {
        for (n, f) in [(6, 1), (6, 3), (9, 4), (12, 2), (5, 5)] {
            let space = ScenarioSpace::new(n, f);
            let mut seen = std::collections::HashSet::new();
            for r in 0..space.count() {
                let s = space.unrank(r);
                assert_eq!(s.len(), f);
                assert!(s.windows(2).all(|w| w[0] < w[1]), "ascending: {s:?}");
                assert!(s.iter().all(|c| c.index() < n));
                assert_eq!(space.rank(&s), r, "roundtrip at rank {r}");
                assert!(seen.insert(s), "rank {r} repeats a subset");
            }
            assert_eq!(seen.len() as u64, space.count(), "bijection onto the space");
        }
    }

    #[test]
    fn colex_enumeration_is_a_permutation_of_lex() {
        let space = ScenarioSpace::new(6, 3);
        let lex = combinations(6, 3);
        let colex: Vec<_> = (0..space.count()).map(|r| space.unrank(r)).collect();
        assert_eq!(colex.len(), lex.len());
        for s in &lex {
            assert!(colex.contains(s), "{s:?} missing from colex enumeration");
        }
        // Colex sorts by largest element first.
        for w in colex.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let pair = a.iter().rev().zip(b.iter().rev());
            let ord = pair
                .map(|(x, y)| x.cmp(y))
                .find(|o| o.is_ne())
                .expect("subsets differ");
            assert_eq!(ord, std::cmp::Ordering::Less, "{a:?} !< {b:?} in colex");
        }
    }

    #[test]
    fn degenerate_spaces() {
        let empty_subset = ScenarioSpace::new(4, 0);
        assert_eq!(empty_subset.count(), 1);
        assert_eq!(empty_subset.unrank(0), Vec::<ControllerId>::new());
        assert_eq!(empty_subset.rank(&[]), 0);
        let empty_space = ScenarioSpace::new(3, 5);
        assert_eq!(empty_space.count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_rejects_out_of_range() {
        ScenarioSpace::new(6, 2).unrank(15);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rank_rejects_unsorted_subsets() {
        ScenarioSpace::new(6, 2).rank(&[ControllerId(3), ControllerId(1)]);
    }

    #[test]
    fn sampling_is_seeded_sorted_and_without_replacement() {
        let space = ScenarioSpace::new(16, 3); // C(16,3) = 560
        let a = ScenarioSelection::sampled(space.clone(), 100, 7);
        let b = ScenarioSelection::sampled(space.clone(), 100, 7);
        let c = ScenarioSelection::sampled(space.clone(), 100, 8);
        assert!(a.is_sampled());
        assert_eq!(a.len(), 100);
        let ranks = |sel: &ScenarioSelection| -> Vec<u64> {
            (0..sel.len()).map(|p| sel.rank_at(p)).collect()
        };
        assert_eq!(ranks(&a), ranks(&b), "same seed, same sample");
        assert_ne!(ranks(&a), ranks(&c), "different seed, different sample");
        let ra = ranks(&a);
        assert!(ra.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(ra.iter().all(|&r| r < space.count()));
    }

    #[test]
    fn oversized_budget_falls_back_to_exhaustive() {
        // Regression: a budget >= C(n,f) must not spin looking for fresh
        // ranks — it degrades to the exhaustive enumeration.
        let space = ScenarioSpace::new(6, 3);
        for max in [20, 21, 10_000, u64::MAX] {
            let sel = ScenarioSelection::sampled(space.clone(), max, 42);
            assert!(!sel.is_sampled(), "budget {max} covers the space");
            assert_eq!(sel.len(), 20);
            let ranks: Vec<u64> = (0..sel.len()).map(|p| sel.rank_at(p)).collect();
            assert_eq!(ranks, (0..20).collect::<Vec<u64>>());
        }
        // One below the space size still samples.
        assert!(ScenarioSelection::sampled(space, 19, 42).is_sampled());
    }

    #[test]
    fn nearly_full_samples_terminate() {
        let space = ScenarioSpace::new(6, 3);
        let sel = ScenarioSelection::sampled(space, 19, 1);
        assert_eq!(sel.len(), 19, "Floyd draws exactly the budget");
    }

    #[test]
    fn shards_partition_the_selection() {
        let space = ScenarioSpace::new(10, 3); // 120 scenarios
        let sel = ScenarioSelection::exhaustive(space);
        for m in [1usize, 2, 3, 4, 7, 120, 121] {
            let mut covered = Vec::new();
            for i in 1..=m {
                let r = sel.shard_range(Some((i, m)));
                covered.extend(r.clone());
                let size = r.end - r.start;
                assert!(
                    (sel.len() / m as u64..=sel.len().div_ceil(m as u64)).contains(&size),
                    "shard {i}/{m} unbalanced: {size}"
                );
            }
            assert_eq!(covered, (0..sel.len()).collect::<Vec<u64>>(), "m = {m}");
        }
        assert_eq!(sel.shard_range(None), 0..120);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_within_count() {
        ScenarioSelection::exhaustive(ScenarioSpace::new(6, 2)).shard_range(Some((3, 2)));
    }

    #[test]
    fn uniform_below_is_in_range_and_deterministic() {
        let mut rng = DetRng::seed_from_u64(9);
        let draws: Vec<u64> = (0..1000).map(|_| uniform_below(&mut rng, 7)).collect();
        assert!(draws.iter().all(|&d| d < 7));
        let mut rng2 = DetRng::seed_from_u64(9);
        let again: Vec<u64> = (0..1000).map(|_| uniform_below(&mut rng2, 7)).collect();
        assert_eq!(draws, again);
        // Every residue appears over 1000 draws — sanity, not statistics.
        for v in 0..7 {
            assert!(draws.contains(&v), "residue {v} never drawn");
        }
    }
}
