//! Evaluation harness for the ProgrammabilityMedic reproduction.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (Section VI):
//!
//! | Binary   | Paper artifact | Content |
//! |----------|----------------|---------|
//! | `table3` | Table III      | controller domains and per-switch flow counts |
//! | `fig4`   | Fig. 4(a–d)    | one controller failure, 6 cases |
//! | `fig5`   | Fig. 5(a–f)    | two controller failures, 15 cases |
//! | `fig6`   | Fig. 6(a–f)    | three controller failures, 20 cases |
//! | `fig7`   | Fig. 7         | PM computation time as % of Optimal |
//!
//! This library holds the shared harness: enumerate failure cases, run the
//! four algorithms, collect [`pm_sdwan::PlanMetrics`], and render aligned
//! text tables (plus optional CSV files for plotting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod figures;
pub mod harness;
pub mod par;
pub mod plan_store;
pub mod pmd;
pub mod report;
pub mod scenario_space;
pub mod sweep;
pub mod timelines;
pub mod wan;

pub use events::EventLog;
pub use harness::{AlgoRun, CaseResult, EvalOptions, TelemetryPlane};
pub use par::{
    current_worker, par_map, stream_indexed, timing_stats, SolvedPlan, SweepEngine, TimingStats,
};
pub use plan_store::{PlanStore, StoredPlan};
pub use pmd::{Generation, PmdConfig, PmdService};
pub use scenario_space::{binomial, ScenarioSelection, ScenarioSpace};
pub use sweep::combinations;
pub use timelines::{timeline_rows, TimelineRunInfo, TimelineSelection, TIMELINE_CASE_HEADERS};
pub use wan::{build_wan, BuiltWan, WanSpec};
