//! Failure-case enumeration: all k-subsets of the controller set.

use pm_sdwan::ControllerId;

/// All `k`-element combinations of `0..n` in lexicographic order, as
/// controller id lists — the paper's "6 combinations" (k = 1),
/// "15 combinations" (k = 2) and "20 combinations" (k = 3).
///
/// The edge cases follow the binomial coefficient: `k = 0` yields the one
/// empty combination (`C(n, 0) = 1`, even for `n = 0`), and `k > n` yields
/// no combinations at all (`C(n, k) = 0`).
///
/// # Example
///
/// ```
/// use pm_bench::combinations;
/// assert_eq!(combinations(6, 1).len(), 6);
/// assert_eq!(combinations(6, 2).len(), 15);
/// assert_eq!(combinations(6, 3).len(), 20);
/// assert_eq!(combinations(6, 0), vec![Vec::new()]);
/// assert!(combinations(2, 3).is_empty());
/// ```
pub fn combinations(n: usize, k: usize) -> Vec<Vec<ControllerId>> {
    let mut out = Vec::new();
    if k == 0 {
        out.push(Vec::new());
        return out;
    }
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| ControllerId(i)).collect());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_binomials() {
        assert_eq!(combinations(6, 1).len(), 6);
        assert_eq!(combinations(6, 2).len(), 15);
        assert_eq!(combinations(6, 3).len(), 20);
        assert_eq!(combinations(5, 5).len(), 1);
    }

    #[test]
    fn zero_k_yields_one_empty_combination() {
        // C(n, 0) = 1: the empty failure set is itself a (trivial) case.
        assert_eq!(combinations(3, 0), vec![Vec::<ControllerId>::new()]);
        assert_eq!(combinations(0, 0), vec![Vec::<ControllerId>::new()]);
    }

    #[test]
    fn oversized_k_yields_no_combinations() {
        // C(n, k) = 0 for k > n.
        assert!(combinations(3, 4).is_empty());
        assert!(combinations(0, 1).is_empty());
    }

    #[test]
    fn lexicographic_and_unique() {
        let all = combinations(6, 3);
        let mut seen = std::collections::HashSet::new();
        for c in &all {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "not ascending: {c:?}");
            assert!(seen.insert(c.clone()), "duplicate: {c:?}");
        }
        assert_eq!(
            all[0],
            vec![ControllerId(0), ControllerId(1), ControllerId(2)]
        );
        assert_eq!(
            all.last().unwrap(),
            &vec![ControllerId(3), ControllerId(4), ControllerId(5)]
        );
    }
}
