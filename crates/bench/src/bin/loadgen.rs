//! Seeded closed-loop load generator for `pmd` (the plan-serving daemon).
//!
//! Replays a deterministic stream of failure-set `POST /plan` requests
//! against a running `pmd` — or, with no `--addr`, against a self-hosted
//! in-process [`PmdService`] on the paper's ATT topology — over persistent
//! keep-alive connections, one per client thread. Measures per-request
//! wall latency and writes `BENCH_serve.json` (schema version 1) with
//! p50/p90/p99/max latency and sustained plans/sec.
//!
//! Run: `cargo run --release -p pm-bench --bin loadgen -- [--addr HOST:PORT]
//! [--requests N] [--threads T] [--rate R] [--seed S] [--horizon K]
//! [--beyond FRAC] [--out PATH]`
//!
//! `--beyond FRAC` sends that fraction of requests with `horizon + 1`
//! failures, exercising the daemon's on-demand solve fallback; the rest
//! stay within the precomputed store. `--rate R` paces the *total*
//! request rate (requests per second, split across threads); 0 means
//! open throttle.

use pm_bench::{Generation, PmdConfig, PmdService};
use pm_sdwan::SdWanBuilder;
use pm_topo::rng::DetRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    requests: u64,
    threads: usize,
    rate: f64,
    seed: u64,
    horizon: usize,
    beyond: f64,
    workers: usize,
    jobs: usize,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--requests N] [--threads T] [--rate R/S] \
         [--seed S] [--horizon K] [--beyond FRAC] [--workers W] [--jobs J] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        requests: 20_000,
        threads: 4,
        rate: 0.0,
        seed: 42,
        horizon: 2,
        beyond: 0.0,
        workers: 8,
        jobs: 0,
        out: PathBuf::from("BENCH_serve.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("loadgen: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(val("--addr")),
            "--requests" => args.requests = parse_num(&flag, &val("--requests")),
            "--threads" => args.threads = parse_num::<usize>(&flag, &val("--threads")).max(1),
            "--rate" => args.rate = parse_num(&flag, &val("--rate")),
            "--seed" => args.seed = parse_num(&flag, &val("--seed")),
            "--horizon" => args.horizon = parse_num::<usize>(&flag, &val("--horizon")).max(1),
            "--beyond" => args.beyond = parse_num::<f64>(&flag, &val("--beyond")).clamp(0.0, 1.0),
            "--workers" => args.workers = parse_num::<usize>(&flag, &val("--workers")).max(1),
            "--jobs" => args.jobs = parse_num(&flag, &val("--jobs")),
            "--out" => args.out = PathBuf::from(val("--out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("loadgen: unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("loadgen: {flag} got {raw:?}, expected a number");
        usage()
    })
}

/// A distinct ascending controller-index set of size `f` out of `n`,
/// drawn with a partial Fisher–Yates over the index range.
fn draw_set(rng: &mut DetRng, n: usize, f: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..f {
        let j = i + (rng.next_u64() as usize) % (n - i);
        pool.swap(i, j);
    }
    let mut set: Vec<usize> = pool[..f].to_vec();
    set.sort_unstable();
    set
}

/// One request over an open connection; returns the latency and whether
/// the daemon answered from the store (`true`) or solved on demand.
fn one_request(conn: &mut BufReader<TcpStream>, body: &str) -> std::io::Result<(Duration, bool)> {
    let req = format!(
        "POST /plan HTTP/1.1\r\nHost: pmd\r\nConnection: keep-alive\r\n\
         Content-Length: {}\r\nContent-Type: application/json\r\n\r\n{body}",
        body.len()
    );
    let t0 = Instant::now();
    conn.get_mut().write_all(req.as_bytes())?;
    let mut line = String::new();
    conn.read_line(&mut line)?;
    if !line.starts_with("HTTP/1.1 200") {
        // Drain the rest of this response so the connection stays usable,
        // then report the failure.
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            conn.read_line(&mut h)?;
            if h == "\r\n" || h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
        let mut sink = vec![0u8; content_length];
        conn.read_exact(&mut sink)?;
        return Err(std::io::Error::other(line.trim().to_string()));
    }
    let mut content_length = 0usize;
    loop {
        line.clear();
        conn.read_line(&mut line)?;
        if line == "\r\n" || line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut resp = vec![0u8; content_length];
    conn.read_exact(&mut resp)?;
    let elapsed = t0.elapsed();
    let from_store = std::str::from_utf8(&resp)
        .map(|s| s.contains("\"source\": \"store\""))
        .unwrap_or(false);
    Ok((elapsed, from_store))
}

struct ThreadOutcome {
    latencies_ns: Vec<u64>,
    store_hits: u64,
    solved: u64,
    errors: u64,
}

#[allow(clippy::too_many_arguments)]
fn client_thread(
    addr: String,
    requests: u64,
    controllers: usize,
    horizon: usize,
    beyond: f64,
    per_thread_rate: f64,
    seed: u64,
    issued: &AtomicU64,
    total: u64,
) -> ThreadOutcome {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut out = ThreadOutcome {
        latencies_ns: Vec::with_capacity(requests as usize),
        store_hits: 0,
        solved: 0,
        errors: 0,
    };
    let mut conn: Option<BufReader<TcpStream>> = None;
    let pace = if per_thread_rate > 0.0 {
        Some(Duration::from_secs_f64(1.0 / per_thread_rate))
    } else {
        None
    };
    let start = Instant::now();
    let mut sent = 0u64;
    while issued.fetch_add(1, Ordering::Relaxed) < total {
        if let Some(step) = pace {
            let due = start + step * u32::try_from(sent).unwrap_or(u32::MAX);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        sent += 1;
        let f = if beyond > 0.0 && rng.unit_f64() < beyond {
            (horizon + 1).min(controllers - 1)
        } else {
            1 + (rng.next_u64() as usize) % horizon
        };
        let set = draw_set(&mut rng, controllers, f);
        let ids: Vec<String> = set.iter().map(usize::to_string).collect();
        let body = format!("{{\"controllers\": [{}]}}", ids.join(", "));
        let mut stream = match conn.take() {
            Some(c) => c,
            None => match TcpStream::connect(&addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
                    BufReader::new(s)
                }
                Err(_) => {
                    out.errors += 1;
                    continue;
                }
            },
        };
        match one_request(&mut stream, &body) {
            Ok((latency, from_store)) => {
                out.latencies_ns
                    .push(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
                if from_store {
                    out.store_hits += 1;
                } else {
                    out.solved += 1;
                }
                conn = Some(stream); // keep the socket warm
            }
            Err(_) => out.errors += 1, // drop the socket; reconnect next turn
        }
    }
    out
}

fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn main() {
    let args = parse_args();

    // Self-host unless --addr points at a running daemon.
    let hosted: Option<PmdService> = if args.addr.is_none() {
        let cfg = PmdConfig {
            horizon: args.horizon,
            jobs: if args.jobs == 0 {
                PmdConfig::default().jobs
            } else {
                args.jobs
            },
            workers: args.workers,
            ..Default::default()
        };
        eprintln!(
            "loadgen: self-hosting pmd (ATT paper topology, horizon {}, {} HTTP workers)",
            cfg.horizon, cfg.workers
        );
        let source = Box::new(move |id| {
            let net = SdWanBuilder::att_paper_setup()
                .build()
                .map_err(|e| e.to_string())?;
            Ok(Generation::build(id, net, &cfg))
        });
        match PmdService::start("127.0.0.1:0", source, cfg) {
            Ok(svc) => Some(svc),
            Err(e) => {
                eprintln!("loadgen: could not self-host pmd: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let addr = match (&hosted, &args.addr) {
        (Some(svc), _) => svc.local_addr().to_string(),
        (None, Some(a)) => a.clone(),
        (None, None) => unreachable!(),
    };

    // Shape facts come from the hosted store, or the daemon's status.
    let (controllers, horizon, plans) = match &hosted {
        Some(svc) => {
            let generation = svc.generation();
            let store = generation.store();
            (store.controllers(), store.horizon(), store.len())
        }
        None => probe_status(&addr).unwrap_or_else(|e| {
            eprintln!("loadgen: {addr} did not answer GET /status.json: {e}");
            std::process::exit(1);
        }),
    };
    eprintln!(
        "loadgen: target {addr} — {controllers} controllers, {plans} stored plans (f <= {horizon})"
    );

    let per_thread_rate = if args.rate > 0.0 {
        args.rate / args.threads as f64
    } else {
        0.0
    };
    let issued = AtomicU64::new(0);
    let t0 = Instant::now();
    let outcomes: Vec<ThreadOutcome> = std::thread::scope(|scope| {
        let issued = &issued;
        let handles: Vec<_> = (0..args.threads)
            .map(|t| {
                let addr = addr.clone();
                scope.spawn(move || {
                    client_thread(
                        addr,
                        args.requests.div_ceil(args.threads as u64),
                        controllers,
                        horizon,
                        args.beyond,
                        per_thread_rate,
                        args.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        issued,
                        args.requests,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = t0.elapsed();

    let mut latencies: Vec<u64> = Vec::new();
    let (mut store_hits, mut solved, mut errors) = (0u64, 0u64, 0u64);
    for o in outcomes {
        latencies.extend_from_slice(&o.latencies_ns);
        store_hits += o.store_hits;
        solved += o.solved;
        errors += o.errors;
    }
    latencies.sort_unstable();
    let ok = latencies.len() as u64;
    let plans_per_sec = ok as f64 / wall.as_secs_f64().max(1e-9);
    let us = |ns: u64| ns as f64 / 1e3;
    let p50 = percentile(&latencies, 0.50);
    let p90 = percentile(&latencies, 0.90);
    let p99 = percentile(&latencies, 0.99);
    let max = latencies.last().copied().unwrap_or(0);

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"serve\",\n  \"target\": \"{}\",\n  \
         \"self_hosted\": {},\n  \"requests\": {},\n  \"ok\": {ok},\n  \"errors\": {errors},\n  \
         \"threads\": {},\n  \"rate_limit\": {},\n  \"seed\": {},\n  \"beyond_fraction\": {},\n  \
         \"duration_s\": {:.6},\n  \"plans_per_sec\": {plans_per_sec:.1},\n  \
         \"latency_us\": {{\"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}},\n  \
         \"served\": {{\"store\": {store_hits}, \"solved\": {solved}}},\n  \
         \"store\": {{\"plans\": {plans}, \"horizon\": {horizon}, \"controllers\": {controllers}}}\n}}\n",
        pm_obs::json::escape(&addr),
        hosted.is_some(),
        args.requests,
        args.threads,
        args.rate,
        args.seed,
        args.beyond,
        wall.as_secs_f64(),
        us(p50),
        us(p90),
        us(p99),
        us(max),
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("loadgen: could not write {}: {e}", args.out.display());
        std::process::exit(1);
    }

    println!(
        "serve bench: {ok} ok / {errors} err over {:.3}s — {plans_per_sec:.0} plans/sec",
        wall.as_secs_f64()
    );
    println!(
        "latency: p50 {:.1}us  p90 {:.1}us  p99 {:.1}us  max {:.1}us",
        us(p50),
        us(p90),
        us(p99),
        us(max)
    );
    println!(
        "served: {store_hits} from store, {solved} solved on demand -> {}",
        args.out.display()
    );
}

/// Asks a remote daemon for its store shape via `GET /status.json`.
fn probe_status(addr: &str) -> Result<(usize, usize, u64), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(b"GET /status.json HTTP/1.1\r\nHost: pmd\r\nConnection: close\r\n\r\n")
        .map_err(|e| e.to_string())?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .ok_or("malformed response")?;
    let v = pm_obs::json::parse(body).map_err(|e| format!("bad status body: {e}"))?;
    let field = |k: &str| {
        v.get(k)
            .and_then(pm_obs::json::Value::as_u64)
            .ok_or_else(|| format!("status.json lacks {k}"))
    };
    Ok((
        field("controllers")? as usize,
        field("horizon")? as usize,
        field("plans")?,
    ))
}
