//! Beyond the paper's figures: successive failures and recovery stability.
//!
//! The paper notes controllers "may fail simultaneously or fail
//! successively" (its reference \[7\], Matchmaker, targets that regime).
//! This drill plays every ordered pair of controller failures as a
//! *sequence* — recover after the first failure, then again after the
//! second — and compares incremental recovery
//! (`pm_core::SuccessiveRecovery`, which pins earlier decisions) against
//! recomputing from scratch at each step:
//!
//! * **churn** — how many switch mappings and SDN selections change between
//!   steps (each remapped switch is a role handshake, each changed
//!   selection a FlowMod: churn is control-plane cost and forwarding risk);
//! * **quality** — total programmability of the final plan.
//!
//! Sequences are independent, so they run in parallel across the worker
//! pool (`--jobs N`) and merge back in order.
//!
//! Run: `cargo run --release -p pm-bench --bin successive_drill [--jobs N]` (plus telemetry flags `--trace`/`--metrics`/`--prom`/`--events`/`--progress`; see `--help`)

use pm_bench::par::par_map;
use pm_bench::report::render_table;
use pm_bench::{EvalOptions, SweepEngine};
use pm_core::{FmssmInstance, Pm, RecoveryAlgorithm, SuccessiveRecovery};
use pm_sdwan::{ControllerId, PlanMetrics, RecoveryPlan, SdWanBuilder};

/// Number of decisions in `b` that are new or changed relative to `a`.
fn churn(a: &RecoveryPlan, b: &RecoveryPlan) -> usize {
    b.difference(a).sdn_count() + b.difference(a).mappings().count()
}

/// One ordered failure sequence's outcome.
struct Sequence {
    label: String,
    inc_churn: usize,
    scr_churn: usize,
    inc_total: u64,
    scr_total: u64,
}

fn main() {
    let opts = EvalOptions::from_args();
    let _plane = opts.start_telemetry_plane();
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let engine = SweepEngine::new(&net, opts.clone());
    let m = net.controllers().len();

    let pairs: Vec<(usize, usize)> = (0..m)
        .flat_map(|first| (0..m).filter(move |&s| s != first).map(move |s| (first, s)))
        .collect();

    let sequences = par_map(&pairs, opts.jobs, |_, &(first, second)| {
        let prog = engine.programmability();
        let (c1, c2) = (ControllerId(first), ControllerId(second));

        // Incremental: recover c1, then extend for c2.
        let mut rec = SuccessiveRecovery::new();
        rec.on_failure(&net, prog, &[c1]).expect("step 1");
        let step1 = rec.plan().clone();
        rec.on_failure(&net, prog, &[c2]).expect("step 2");
        let inc_final = rec.plan().clone();
        let inc_churn = churn(&step1, &inc_final);

        // From scratch at each step.
        let sc1 = engine.scenario(&[c1]).expect("valid");
        let scratch1 = Pm::new()
            .recover(&FmssmInstance::with_cache(&sc1, prog, engine.cache()))
            .expect("pm step 1");
        let sc2 = engine.scenario(&[c1, c2]).expect("valid");
        let scratch2 = Pm::new()
            .recover(&FmssmInstance::with_cache(&sc2, prog, engine.cache()))
            .expect("pm step 2");
        let scr_churn = churn(&scratch1, &scratch2);

        let m_inc = PlanMetrics::compute(&sc2, prog, &inc_final, 0.0);
        let m_scr = PlanMetrics::compute(&sc2, prog, &scratch2, 0.0);

        Sequence {
            label: format!(
                "{} then {}",
                net.controllers()[first].node.index(),
                net.controllers()[second].node.index()
            ),
            inc_churn,
            scr_churn,
            inc_total: m_inc.total_programmability,
            scr_total: m_scr.total_programmability,
        }
    });

    let mut rows = Vec::new();
    let mut inc_total_sum = 0u64;
    let mut scr_total_sum = 0u64;
    let mut inc_churn_sum = 0usize;
    let mut scr_churn_sum = 0usize;
    for seq in &sequences {
        inc_total_sum += seq.inc_total;
        scr_total_sum += seq.scr_total;
        inc_churn_sum += seq.inc_churn;
        scr_churn_sum += seq.scr_churn;
        rows.push(vec![
            seq.label.clone(),
            seq.inc_churn.to_string(),
            seq.scr_churn.to_string(),
            seq.inc_total.to_string(),
            seq.scr_total.to_string(),
        ]);
    }

    println!("successive failures: incremental (stable) vs from-scratch recovery\n");
    print!(
        "{}",
        render_table(
            &[
                "sequence",
                "churn incr",
                "churn scratch",
                "total incr",
                "total scratch"
            ],
            &rows
        )
    );
    let n = rows.len() as f64;
    println!(
        "\nmeans over {} ordered sequences: churn {:.0} vs {:.0} decisions \
         (incremental saves {:.0}%), total programmability {:.0} vs {:.0} \
         ({:.1}% of from-scratch quality)",
        rows.len(),
        inc_churn_sum as f64 / n,
        scr_churn_sum as f64 / n,
        100.0 * (1.0 - inc_churn_sum as f64 / scr_churn_sum.max(1) as f64),
        inc_total_sum as f64 / n,
        scr_total_sum as f64 / n,
        100.0 * inc_total_sum as f64 / scr_total_sum.max(1) as f64,
    );
    opts.export_observability();
}
