//! Regenerates the paper's Fig. 4: results of one controller failure
//! (6 cases, panels a–d).
//!
//! Run: `cargo run --release -p pm-bench --bin fig4 [--opt-secs N] [--skip-optimal] [--jobs N] [--shard i/m] [--max-scenarios N] [--seed N] [--batch N] [--csv DIR]` (plus telemetry flags `--trace`/`--metrics`/`--prom`/`--events`/`--progress`; see `--help`)

fn main() {
    let opts = pm_bench::EvalOptions::from_args();
    let _plane = opts.start_telemetry_plane();
    pm_bench::figures::run_failure_figure(1, "fig4", false, &opts);
}
