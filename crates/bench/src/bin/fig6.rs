//! Regenerates the paper's Fig. 6: results of three controller failures
//! (20 cases, panels a–f). Like the paper, the exact solver may fail to
//! prove optimality within its budget in some cases — those cells are
//! bracketed.
//!
//! Run: `cargo run --release -p pm-bench --bin fig6 [--opt-secs N] [--skip-optimal] [--jobs N] [--shard i/m] [--max-scenarios N] [--seed N] [--batch N] [--csv DIR]` (plus telemetry flags `--trace`/`--metrics`/`--prom`/`--events`/`--progress`; see `--help`)

fn main() {
    let opts = pm_bench::EvalOptions::from_args();
    let _plane = opts.start_telemetry_plane();
    pm_bench::figures::run_failure_figure(3, "fig6", true, &opts);
}
