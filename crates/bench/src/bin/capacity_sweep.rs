//! Beyond the paper's figures: controller-capacity sensitivity.
//!
//! The paper fixes every controller's capacity at 500 (following its \[6\],
//! \[9\]). This sweep varies that single knob across the (13, 20) headline
//! failure and reports how each algorithm's recovery degrades as capacity
//! tightens — the crossover where per-flow granularity starts to matter is
//! the study's point: RetroFlow falls off a cliff as soon as the hub no
//! longer fits anywhere, PM and PG degrade gracefully.
//!
//! Each capacity point is an independent network, so the points run in
//! parallel across the worker pool (`--jobs N`); rows are merged back in
//! capacity order.
//!
//! Run: `cargo run --release -p pm-bench --bin capacity_sweep [--jobs N]` (plus telemetry flags `--trace`/`--metrics`/`--prom`/`--events`/`--progress`; see `--help`)

use pm_bench::par::par_map;
use pm_bench::report::{pct, render_table};
use pm_bench::EvalOptions;
use pm_core::{FmssmInstance, Pg, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{ControllerId, NetCache, PlanMetrics, SdWanBuilder};

const CAPACITIES: [u32; 8] = [450, 475, 500, 525, 550, 600, 700, 800];

fn main() {
    let opts = EvalOptions::from_args();
    let _plane = opts.start_telemetry_plane();
    let results = par_map(&CAPACITIES, opts.jobs, |_, &capacity| {
        let builder = SdWanBuilder::att_paper_setup_with_capacity(capacity);
        // Below ~490 some domain overloads; study that regime too.
        let net = match builder.clone().build() {
            Ok(n) => n,
            Err(_) => builder
                .allow_overload()
                .build()
                .expect("builds with waiver"),
        };
        let cache = NetCache::build(&net);
        let scenario = net
            .fail_cached(&[ControllerId(3), ControllerId(4)], &cache)
            .expect("valid");
        let prog = cache.programmability();
        let inst = FmssmInstance::with_cache(&scenario, prog, &cache);

        let mut cells = vec![capacity.to_string()];
        let recoverable = inst.recoverable_flow_count();
        let residual: u32 = inst.residuals().iter().sum();
        cells.push(residual.to_string());
        for algo in [
            &RetroFlow::new() as &dyn RecoveryAlgorithm,
            &Pm::new(),
            &Pg::new(),
        ] {
            let plan = algo.recover(&inst).expect("plan");
            plan.validate(&scenario, prog, algo.is_flow_level())
                .expect("valid plan");
            let m = PlanMetrics::compute(&scenario, prog, &plan, 0.0);
            cells.push(format!(
                "{} ({})",
                pct(m.recovered_flows as f64 / recoverable.max(1) as f64),
                m.total_programmability
            ));
        }
        (cells, capacity, recoverable)
    });

    let paper_point_recoverable = results
        .iter()
        .find(|&&(_, capacity, _)| capacity == 500)
        .map(|&(_, _, recoverable)| recoverable)
        .expect("sweep includes the paper's operating point");
    let rows: Vec<Vec<String>> = results.into_iter().map(|(cells, _, _)| cells).collect();

    println!(
        "capacity sensitivity on the (13,20) failure — recovered % of {paper_point_recoverable} \
         recoverable flows (total programmability)\n"
    );
    print!(
        "{}",
        render_table(&["capacity", "residual", "RetroFlow", "PM", "PG"], &rows)
    );
    println!("\n(paper operating point: capacity 500)");
    opts.export_observability();
}
