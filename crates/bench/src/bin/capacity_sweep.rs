//! Beyond the paper's figures: controller-capacity sensitivity.
//!
//! The paper fixes every controller's capacity at 500 (following its \[6\],
//! \[9\]). This sweep varies that single knob across the (13, 20) headline
//! failure and reports how each algorithm's recovery degrades as capacity
//! tightens — the crossover where per-flow granularity starts to matter is
//! the study's point: RetroFlow falls off a cliff as soon as the hub no
//! longer fits anywhere, PM and PG degrade gracefully.
//!
//! Run: `cargo run --release -p pm-bench --bin capacity_sweep`

use pm_bench::report::{pct, render_table};
use pm_core::{FmssmInstance, Pg, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{ControllerId, PlanMetrics, Programmability, SdWanBuilder};

fn main() {
    let mut rows = Vec::new();
    for capacity in [450u32, 475, 500, 525, 550, 600, 700, 800] {
        let builder = SdWanBuilder::att_paper_setup_with_capacity(capacity);
        // Below ~490 some domain overloads; study that regime too.
        let net = match builder.clone().build() {
            Ok(n) => n,
            Err(_) => builder
                .allow_overload()
                .build()
                .expect("builds with waiver"),
        };
        let prog = Programmability::compute(&net);
        let scenario = net
            .fail(&[ControllerId(3), ControllerId(4)])
            .expect("valid");
        let inst = FmssmInstance::new(&scenario, &prog);

        let mut cells = vec![capacity.to_string()];
        let recoverable = inst.recoverable_flow_count();
        let residual: u32 = inst.residuals().iter().sum();
        cells.push(residual.to_string());
        for algo in [
            &RetroFlow::new() as &dyn RecoveryAlgorithm,
            &Pm::new(),
            &Pg::new(),
        ] {
            let plan = algo.recover(&inst).expect("plan");
            plan.validate(&scenario, &prog, algo.is_flow_level())
                .expect("valid plan");
            let m = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
            cells.push(format!(
                "{} ({})",
                pct(m.recovered_flows as f64 / recoverable.max(1) as f64),
                m.total_programmability
            ));
        }
        rows.push(cells);
    }
    println!(
        "capacity sensitivity on the (13,20) failure — recovered % of {} recoverable \
         flows (total programmability)\n",
        {
            let net = SdWanBuilder::att_paper_setup().build().expect("builds");
            let prog = Programmability::compute(&net);
            let sc = net
                .fail(&[ControllerId(3), ControllerId(4)])
                .expect("valid");
            FmssmInstance::new(&sc, &prog).recoverable_flow_count()
        }
    );
    print!(
        "{}",
        render_table(&["capacity", "residual", "RetroFlow", "PM", "PG"], &rows)
    );
    println!("\n(paper operating point: capacity 500)");
}
