//! Regenerates the paper's Fig. 7: PM's computation time as a percentage of
//! Optimal's, for one/two/three controller failures.
//!
//! Run: `cargo run --release -p pm-bench --bin fig7 [--opt-secs N] [--csv DIR]`

use pm_bench::harness::{run_case, EvalOptions};
use pm_bench::report::{render_table, write_csv};
use pm_bench::sweep::combinations;
use pm_sdwan::{Programmability, SdWanBuilder};

fn main() {
    let opts = EvalOptions::from_args();
    if opts.skip_optimal {
        eprintln!("fig7 compares against Optimal; --skip-optimal is not applicable");
        std::process::exit(2);
    }
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let prog = Programmability::compute(&net);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for k in 1..=3 {
        let mut ratios = Vec::new();
        for failed in combinations(net.controllers().len(), k) {
            let case = run_case(&net, &prog, &failed, &opts);
            let pm = case.run("PM").expect("PM always runs");
            let optimal = case.run("Optimal").expect("Optimal requested");
            let ratio = pm.elapsed.as_secs_f64() / optimal.elapsed.as_secs_f64().max(1e-9);
            csv_rows.push(vec![
                case.label.clone(),
                format!("{:.6}", pm.elapsed.as_secs_f64()),
                format!("{:.6}", optimal.elapsed.as_secs_f64()),
                format!("{:.4}", ratio * 100.0),
                optimal.proved_optimal.unwrap_or(false).to_string(),
            ]);
            ratios.push(ratio);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        rows.push(vec![
            format!("{k} failure(s)"),
            format!("{:.3}%", mean * 100.0),
            format!("{:.3}%", max * 100.0),
            ratios.len().to_string(),
        ]);
    }
    println!("fig7 — computation time of PM as % of Optimal (lower better)\n");
    print!(
        "{}",
        render_table(
            &["scenario", "mean PM/Optimal", "max PM/Optimal", "cases"],
            &rows
        )
    );
    println!(
        "\n(the paper reports 2.54%, 1.77% and 2.18% on average; Optimal runs under a {:?} budget)",
        opts.optimal_time_limit
    );
    if let Some(dir) = &opts.csv_dir {
        write_csv(
            dir,
            "fig7",
            &[
                "case",
                "pm_secs",
                "optimal_secs",
                "pm_pct_of_optimal",
                "proved_optimal",
            ],
            &csv_rows,
        );
    }
}
