//! Regenerates the paper's Fig. 7: PM's computation time as a percentage of
//! Optimal's, for one/two/three controller failures.
//!
//! With `--skip-optimal` there is no Optimal baseline to normalize against,
//! so the binary reports absolute per-case heuristic timing statistics
//! (mean / p95 / max per algorithm and failure count) instead — the mode
//! used to measure the sweep engine itself.
//!
//! Run: `cargo run --release -p pm-bench --bin fig7 [--opt-secs N] [--skip-optimal] [--jobs N] [--shard i/m] [--max-scenarios N] [--seed N] [--batch N] [--csv DIR] [--trace FILE] [--metrics FILE] [--prom FILE] [--events FILE] [--progress]`

use pm_bench::figures::{timing_rows, write_bench_sweep_json, TIMING_HEADERS};
use pm_bench::harness::EvalOptions;
use pm_bench::report::{render_table, write_csv};
use pm_bench::SweepEngine;
use pm_sdwan::SdWanBuilder;

fn main() {
    let opts = EvalOptions::from_args();
    let _plane = opts.start_telemetry_plane();
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let engine = SweepEngine::new(&net, opts.clone());

    if opts.skip_optimal {
        heuristic_timing(&engine, &opts);
        opts.export_observability();
        return;
    }

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for k in 1..=3 {
        let cases = engine.sweep(k);
        let mut ratios = Vec::new();
        for case in &cases {
            let pm = case.run("PM").expect("PM always runs");
            let optimal = case.run("Optimal").expect("Optimal requested");
            let ratio = pm.elapsed.as_secs_f64() / optimal.elapsed.as_secs_f64().max(1e-9);
            csv_rows.push(vec![
                case.label.clone(),
                format!("{:.6}", pm.elapsed.as_secs_f64()),
                format!("{:.6}", optimal.elapsed.as_secs_f64()),
                format!("{:.4}", ratio * 100.0),
                optimal.proved_optimal.unwrap_or(false).to_string(),
            ]);
            ratios.push(ratio);
        }
        if ratios.is_empty() {
            rows.push(vec![
                format!("{k} failure(s)"),
                "-".into(),
                "-".into(),
                "0".into(),
            ]);
            continue;
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        rows.push(vec![
            format!("{k} failure(s)"),
            format!("{:.3}%", mean * 100.0),
            format!("{:.3}%", max * 100.0),
            ratios.len().to_string(),
        ]);
    }
    println!("fig7 — computation time of PM as % of Optimal (lower better)\n");
    print!(
        "{}",
        render_table(
            &["scenario", "mean PM/Optimal", "max PM/Optimal", "cases"],
            &rows
        )
    );
    println!(
        "\n(the paper reports 2.54%, 1.77% and 2.18% on average; Optimal runs under a {:?} budget; \
         use --jobs 1 for uncontended measurements)",
        opts.optimal_time_limit
    );
    if let Some(dir) = &opts.csv_dir {
        write_csv(
            dir,
            "fig7",
            &[
                "case",
                "pm_secs",
                "optimal_secs",
                "pm_pct_of_optimal",
                "proved_optimal",
            ],
            &csv_rows,
        );
    }
    opts.export_observability();
}

/// The `--skip-optimal` mode: absolute heuristic timing over all 41 cases.
fn heuristic_timing(engine: &SweepEngine<'_>, opts: &EvalOptions) {
    let mut rows = Vec::new();
    let mut all_cases = Vec::new();
    let mut sweeps = Vec::new();
    for k in 1..=3 {
        let cases = engine.sweep(k);
        for stat in timing_rows(&cases) {
            let mut row = vec![format!("{k} failure(s)")];
            row.extend(stat);
            rows.push(row);
        }
        all_cases.extend(cases.clone());
        sweeps.push((k, cases));
    }
    let sweep_refs: Vec<(usize, &[pm_bench::CaseResult])> =
        sweeps.iter().map(|(k, c)| (*k, c.as_slice())).collect();
    write_bench_sweep_json(opts, "fig7", &sweep_refs);
    println!(
        "fig7 --skip-optimal — heuristic computation time per case \
         ({} thread(s); wall clock)\n",
        opts.jobs
    );
    let mut headers = vec!["scenario"];
    headers.extend(TIMING_HEADERS);
    print!("{}", render_table(&headers, &rows));
    println!("\noverall (all {} cases):", all_cases.len());
    print!(
        "{}",
        render_table(&TIMING_HEADERS, &timing_rows(&all_cases))
    );
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "fig7_timing", &headers, &rows);
    }
}
