//! Beyond the paper's figures: what does recovered programmability *buy*?
//!
//! The paper motivates programmability as the ability to reroute flows
//! under network variation (Section II-A). This drill simulates exactly
//! that: after the (13, 20) double failure and recovery by each algorithm,
//! the most-loaded link gets congested and the traffic engineering loop
//! tries to steer every flow crossing it onto an alternate path with a
//! single programmable deviation (`pm_core::Rerouter`).
//!
//! The fraction of crossing flows each algorithm can move is the utility
//! its recovery actually delivers.
//!
//! Run: `cargo run --release -p pm-bench --bin reroute_drill` (plus telemetry flags `--trace`/`--metrics`/`--prom`/`--events`/`--progress`; see `--help`)

use pm_bench::{EvalOptions, SweepEngine};
use pm_core::{FmssmInstance, Pg, Pm, RecoveryAlgorithm, Rerouter, RetroFlow};
use pm_sdwan::{ControllerId, SdWanBuilder, SwitchId};

fn main() {
    let opts = EvalOptions::from_args();
    let _plane = opts.start_telemetry_plane();
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let engine = SweepEngine::new(&net, opts);
    let prog = engine.programmability();
    let failed = [ControllerId(3), ControllerId(4)];
    let scenario = engine.scenario(&failed).expect("valid failure");
    let inst = FmssmInstance::with_cache(&scenario, prog, engine.cache());

    // The most-loaded link by flow count.
    let mut best: Option<(SwitchId, SwitchId, usize)> = None;
    for e in net.topology().edges() {
        let (a, b) = (SwitchId(e.a.index()), SwitchId(e.b.index()));
        let crossing = net
            .flows()
            .iter()
            .filter(|f| {
                f.path
                    .windows(2)
                    .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
            })
            .count();
        if best.map_or(true, |(_, _, c)| crossing > c) {
            best = Some((a, b, crossing));
        }
    }
    let (a, b, crossing_count) = best.expect("topology has edges");
    println!(
        "congested link: {a}–{b} ({} ↔ {}), {crossing_count} flows crossing",
        net.topology().node(a.node()).name,
        net.topology().node(b.node()).name,
    );
    let crossing: Vec<_> = net
        .flows()
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.path
                .windows(2)
                .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
        })
        .map(|(l, _)| pm_sdwan::FlowId(l))
        .collect();

    println!(
        "\n{:<10} {:>10} {:>12} {:>14}",
        "algorithm", "reroutable", "% of crossing", "mean detour(ms)"
    );
    for algo in [
        &RetroFlow::new() as &dyn RecoveryAlgorithm,
        &Pm::new(),
        &Pg::new(),
    ] {
        let plan = algo.recover(&inst).expect("plan");
        let mut rr = Rerouter::new(&scenario, prog, &plan);
        let mut moved = 0usize;
        let mut detour_sum = 0.0;
        for &l in &crossing {
            if let Ok(action) = rr.reroute_around_link(l, a, b) {
                moved += 1;
                let old = pm_topo::paths::path_weight(
                    net.topology(),
                    &net.flow(l)
                        .path
                        .iter()
                        .map(|s| s.node())
                        .collect::<Vec<_>>(),
                )
                .expect("original path valid");
                let new = pm_topo::paths::path_weight(
                    net.topology(),
                    &action.path.iter().map(|s| s.node()).collect::<Vec<_>>(),
                )
                .expect("new path valid");
                detour_sum += new - old;
            }
        }
        println!(
            "{:<10} {:>10} {:>12.0}% {:>14.3}",
            algo.name(),
            format!("{moved}/{}", crossing.len()),
            100.0 * moved as f64 / crossing.len() as f64,
            if moved > 0 {
                detour_sum / moved as f64
            } else {
                0.0
            }
        );
    }
    println!(
        "\n(reroute = one FlowMod at a programmable switch onto a loop-free \
         alternate; the legacy tail needs no further entries)"
    );

    // Part 2: the full TE loop — drive the hottest link's utilization down
    // with up to 32 single-deviation moves under each recovery plan.
    let tm = pm_sdwan::TrafficMatrix::gravity(&net, 10_000.0);
    let base = pm_sdwan::LinkLoads::compute(&net, &tm, &Default::default());
    let capacity = base.max_link().map(|(_, l)| l / 0.8).unwrap_or(1.0);
    println!("\nhotspot relief (gravity traffic, hottest link starts at 80% utilization):");
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>7}",
        "algorithm", "initial", "final", "relief", "moves"
    );
    for algo in [
        &RetroFlow::new() as &dyn RecoveryAlgorithm,
        &Pm::new(),
        &Pg::new(),
    ] {
        let plan = algo.recover(&inst).expect("plan");
        let report =
            pm_core::relieve_hotspots(&scenario, prog, &plan, &tm, capacity, 32).expect("traffic");
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>7.1}% {:>7}",
            algo.name(),
            report.initial_utilization * 100.0,
            report.final_utilization * 100.0,
            report.relief() * 100.0,
            report.moves.len()
        );
    }
    engine.options().export_observability();
}
