//! Seeded failure-timeline sweep: replays thousands of event schedules —
//! controller failures, recoveries, cascades, partitions, flow churn —
//! against one large Waxman WAN through the streaming timeline engine.
//!
//! Timeline ids index a [`pm_simctl::TimelineSpace`] the way colex ranks
//! index the scenario space, so `--shard i/m` and `--max-scenarios`
//! compose unchanged: m shard outputs concatenated in shard order are
//! byte-identical to the unsharded run, at any `--jobs` count.
//!
//! Artifacts: `BENCH_timeline.json` (pinned schema: topology,
//! timeline-space accounting including the streaming-dispatch live peak,
//! aggregate event totals, optional phase breakdown), plus — with
//! `--csv DIR` — `timeline_cases.csv` and `timeline_cases.jsonl` holding
//! only deterministic per-timeline outcomes.
//!
//! Run: `cargo run --release -p pm-bench --bin timeline_sweep --
//! [--timelines N] [--nodes N] [--controllers K] [--flows N]
//! [--headroom H] [--horizon-ms N] [--mean-gap-ms N] [--max-failed F]
//! [--no-drain] plus the common sweep flags (`--jobs`, `--shard`,
//! `--max-scenarios`, `--seed`, `--batch`, `--csv`, `--trace`,
//! `--metrics`, `--prom`, `--events`, `--progress`)`

use pm_bench::harness::EvalOptions;
use pm_bench::report::{render_table, write_csv};
use pm_bench::timelines::{timeline_rows, write_bench_timeline_json, TimelineRunInfo};
use pm_bench::wan::{build_wan, WanSpec};
use pm_bench::{SweepEngine, TIMELINE_CASE_HEADERS};
use pm_simctl::{SimTime, TimelineParams};

struct TimelineArgs {
    timelines: u64,
    nodes: usize,
    controllers: usize,
    flows: usize,
    headroom: f64,
    params: TimelineParams,
}

impl Default for TimelineArgs {
    fn default() -> Self {
        TimelineArgs {
            timelines: 10_000,
            nodes: 1000,
            controllers: 32,
            flows: 1024,
            headroom: 1.5,
            params: TimelineParams::default(),
        }
    }
}

fn parse_timeline_args(rest: Vec<String>) -> TimelineArgs {
    let mut ta = TimelineArgs::default();
    let mut it = rest.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs an argument");
            std::process::exit(2);
        })
    };
    fn parse_or_die<T: std::str::FromStr>(flag: &str, v: String) -> T {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag} needs a numeric argument");
            std::process::exit(2);
        })
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timelines" => ta.timelines = parse_or_die(&a, value(&a, &mut it)),
            "--nodes" => ta.nodes = parse_or_die(&a, value(&a, &mut it)),
            "--controllers" => ta.controllers = parse_or_die(&a, value(&a, &mut it)),
            "--flows" => ta.flows = parse_or_die(&a, value(&a, &mut it)),
            "--headroom" => ta.headroom = parse_or_die(&a, value(&a, &mut it)),
            "--horizon-ms" => {
                ta.params.horizon = SimTime::from_ms(parse_or_die(&a, value(&a, &mut it)))
            }
            "--mean-gap-ms" => {
                ta.params.mean_gap = SimTime::from_ms(parse_or_die(&a, value(&a, &mut it)))
            }
            "--max-failed" => ta.params.max_concurrent = parse_or_die(&a, value(&a, &mut it)),
            "--no-drain" => ta.params.drain = false,
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    if ta.timelines == 0 {
        eprintln!("--timelines needs a positive integer argument");
        std::process::exit(2);
    }
    if ta.controllers < 2 || ta.controllers > ta.nodes {
        eprintln!(
            "--controllers must be between 2 and --nodes ({} controllers, {} nodes)",
            ta.controllers, ta.nodes
        );
        std::process::exit(2);
    }
    if ta.flows == 0 {
        eprintln!("--flows needs a positive integer argument");
        std::process::exit(2);
    }
    ta
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "timeline_sweep flags: [--timelines N] [--nodes N] [--controllers K]\n\
             \x20                     [--flows N] [--headroom H] [--horizon-ms N]\n\
             \x20                     [--mean-gap-ms N] [--max-failed F] [--no-drain]\n\
             --timelines    seeded timelines to replay (default 10000)\n\
             --nodes        Waxman switch count (default 1000)\n\
             --controllers  placed controllers (default 32)\n\
             --flows        routed flows over bounded endpoint pools (default 1024)\n\
             --headroom     uniform auto-capacity factor over the peak load (default 1.5)\n\
             --horizon-ms   event-generation horizon per timeline (default 10000)\n\
             --mean-gap-ms  mean gap between timeline events (default 500)\n\
             --max-failed   cap on simultaneously failed controllers (default 3)\n\
             --no-drain     do not append recoveries after the horizon\n\
             plus the common sweep flags:"
        );
    }
    let mut rest = Vec::new();
    let mut opts = EvalOptions::from_args_partial(std::env::args().skip(1), &mut rest);
    let ta = parse_timeline_args(rest);
    // Timelines solve with the two heuristics only, and eager cache
    // warming would reintroduce the all-pairs cost the drill avoids.
    opts.skip_optimal = true;
    opts.eager_warm = false;
    // The recorder backs the live-peak accounting even when no telemetry
    // export was requested.
    pm_obs::enable();
    let _plane = opts.start_telemetry_plane();

    eprintln!(
        "timeline_sweep: generating waxman n={} (seed {})...",
        ta.nodes, opts.seed
    );
    let wan = build_wan(&WanSpec {
        nodes: ta.nodes,
        controllers: ta.controllers,
        flows: ta.flows,
        headroom: ta.headroom,
        seed: opts.seed,
    });
    let net = &wan.net;
    eprintln!(
        "timeline_sweep: {} edges, {} controllers, {} flows; network built",
        wan.edges,
        net.controllers().len(),
        wan.flows
    );

    let engine = SweepEngine::new(net, opts.clone());
    let space = engine.timeline_space(ta.timelines, ta.params.clone());
    let sel = engine.timeline_selection(&space);
    let range = sel.shard_range(opts.shard);
    let shard_note = match opts.shard {
        Some((i, m)) => format!(" (shard {i}/{m} of {})", sel.len()),
        None => String::new(),
    };
    eprintln!(
        "timeline_sweep: {} of {} timeline(s){}{} on {} thread(s), batch {}...",
        range.end - range.start,
        space.count(),
        if sel.is_sampled() { " [sampled]" } else { "" },
        shard_note,
        opts.jobs,
        opts.batch
    );
    let t0 = std::time::Instant::now();
    let reports = engine.sweep_timelines(&space, &sel);
    let sweep_ms = t0.elapsed().as_secs_f64() * 1e3;

    // The streaming-dispatch contract: in-flight timelines never exceed
    // jobs × batch. The dispatcher counts it; hold it to account here.
    let snap = pm_obs::snapshot();
    let counter = |name: &str| -> u64 {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let live_peak = counter("sim.sweep.live_peak");
    let live_bound = (opts.jobs as u64).saturating_mul(opts.batch as u64);
    assert!(
        live_peak <= live_bound,
        "timeline sweep had {live_peak} timelines in flight; \
         the contract bound is jobs*batch = {live_bound}"
    );

    let info = TimelineRunInfo {
        nodes: ta.nodes,
        edges: wan.edges,
        seed: opts.seed,
        controllers: net.controllers().len(),
        flows: wan.flows,
        space_size: space.count(),
        selected: sel.len(),
        sampled: sel.is_sampled(),
        shard: opts.shard,
        timelines_run: reports.len(),
        live_peak,
        live_bound,
    };

    let solves: u64 = reports.iter().map(|r| r.solves as u64).sum();
    let events: u64 = reports.iter().map(|r| r.events as u64).sum();
    let recovered = reports.iter().filter(|r| r.fully_recovered).count();
    println!(
        "timeline_sweep — {} switches / {} controllers, {} timeline(s), \
         {} event(s), {} solve(s)\n",
        info.nodes,
        info.controllers,
        reports.len(),
        events,
        solves
    );
    let summary = vec![
        vec!["timelines run".to_string(), reports.len().to_string()],
        vec!["events replayed".to_string(), events.to_string()],
        vec!["recovery solves".to_string(), solves.to_string()],
        vec!["fully recovered".to_string(), recovered.to_string()],
        vec![
            "peak simultaneous failures".to_string(),
            reports
                .iter()
                .map(|r| r.peak_failed)
                .max()
                .unwrap_or(0)
                .to_string(),
        ],
        vec![
            "worst PM recovered (ppm of offline)".to_string(),
            reports
                .iter()
                .map(|r| r.pm_worst_recovered_ppm)
                .min()
                .unwrap_or(1_000_000)
                .to_string(),
        ],
    ];
    print!("{}", render_table(&["metric", "value"], &summary));
    println!(
        "\ntimeline space {} -> selected {}{}; live peak {live_peak} <= bound {live_bound}",
        info.space_size,
        info.selected,
        if info.sampled { " (seeded sample)" } else { "" }
    );

    if let Some(dir) = &opts.csv_dir {
        let rows = timeline_rows(&reports);
        write_csv(dir, "timeline_cases", &TIMELINE_CASE_HEADERS, &rows);
        write_timeline_jsonl(dir, &rows);
    }
    write_bench_timeline_json(&opts, &info, sweep_ms, &reports);
    opts.export_observability();
}

/// The same rows as `timeline_cases.csv`, one JSON object per line — the
/// mergeable JSON counterpart for sharded runs. Every column is numeric.
fn write_timeline_jsonl(dir: &std::path::Path, rows: &[Vec<String>]) {
    let mut out = String::new();
    for row in rows {
        out.push('{');
        for (i, (h, v)) in TIMELINE_CASE_HEADERS.iter().zip(row).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{h}\": {v}"));
        }
        out.push_str("}\n");
    }
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(dir.join("timeline_cases.jsonl"), out))
    {
        eprintln!("warning: could not write timeline_cases.jsonl: {e}");
    }
}
