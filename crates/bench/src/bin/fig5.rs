//! Regenerates the paper's Fig. 5: results of two controller failures
//! (15 cases, panels a–f).
//!
//! Run: `cargo run --release -p pm-bench --bin fig5 [--opt-secs N] [--skip-optimal] [--jobs N] [--shard i/m] [--max-scenarios N] [--seed N] [--batch N] [--csv DIR]` (plus telemetry flags `--trace`/`--metrics`/`--prom`/`--events`/`--progress`; see `--help`)

fn main() {
    let opts = pm_bench::EvalOptions::from_args();
    let _plane = opts.start_telemetry_plane();
    pm_bench::figures::run_failure_figure(2, "fig5", true, &opts);
}
