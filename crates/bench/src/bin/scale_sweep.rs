//! Large-topology failure sweep: the scale drill for the streaming
//! scenario-space engine.
//!
//! Generates a connected Waxman WAN at 1k–10k switches (β shrinks with the
//! node count so the average degree stays in the high single digits),
//! places controllers by farthest-point traversal, partitions domains with
//! the nearest-controller rule, routes a bounded random flow population,
//! and sweeps `--failures` simultaneous controller failures through the
//! three heuristics (the MILP is out of scope at this scale). The whole
//! pipeline avoids any all-pairs computation, so memory and time scale
//! with the controller count and flow pool — not the switch count squared.
//!
//! Artifacts: `BENCH_scale.json` (pinned schema: topology, scenario-space
//! accounting including the streaming-dispatch live peak, per-algorithm
//! timing, optional phase breakdown), plus — with `--csv DIR` —
//! `scale_cases.csv` and `scale_cases.jsonl` holding only deterministic
//! per-case metrics, so the outputs of `--shard i/m` runs concatenated in
//! shard order are byte-identical to the unsharded run.
//!
//! Run: `cargo run --release -p pm-bench --bin scale_sweep -- [--nodes N]
//! [--controllers K] [--failures F] [--flows N] [--headroom H] [--jobs N]
//! [--csv DIR] [--shard i/m] [--max-scenarios N] [--seed N] [--batch N]
//! [--trace FILE] [--metrics FILE] [--prom FILE] [--events FILE]
//! [--progress]`

use pm_bench::figures::{write_bench_scale_json, ScaleRunInfo};
use pm_bench::harness::EvalOptions;
use pm_bench::report::{render_table, write_csv};
use pm_bench::wan::{build_wan, scale_beta, WanSpec};
use pm_bench::{timing_stats, SweepEngine};

struct ScaleArgs {
    nodes: usize,
    controllers: usize,
    failures: usize,
    flows: usize,
    headroom: f64,
}

impl Default for ScaleArgs {
    fn default() -> Self {
        ScaleArgs {
            nodes: 1000,
            controllers: 32,
            failures: 3,
            flows: 1024,
            headroom: 1.5,
        }
    }
}

fn parse_scale_args(rest: Vec<String>) -> ScaleArgs {
    let mut sa = ScaleArgs::default();
    let mut it = rest.into_iter();
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs an argument");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                sa.nodes = value("--nodes", &mut it).parse().unwrap_or_else(|_| {
                    eprintln!("--nodes needs an integer argument");
                    std::process::exit(2);
                })
            }
            "--controllers" => {
                sa.controllers = value("--controllers", &mut it).parse().unwrap_or_else(|_| {
                    eprintln!("--controllers needs an integer argument");
                    std::process::exit(2);
                })
            }
            "--failures" => {
                sa.failures = value("--failures", &mut it).parse().unwrap_or_else(|_| {
                    eprintln!("--failures needs an integer argument");
                    std::process::exit(2);
                })
            }
            "--flows" => {
                sa.flows = value("--flows", &mut it).parse().unwrap_or_else(|_| {
                    eprintln!("--flows needs an integer argument");
                    std::process::exit(2);
                })
            }
            "--headroom" => {
                sa.headroom = value("--headroom", &mut it).parse().unwrap_or_else(|_| {
                    eprintln!("--headroom needs a number argument");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    if sa.controllers < 2 || sa.controllers > sa.nodes {
        eprintln!(
            "--controllers must be between 2 and --nodes ({} controllers, {} nodes)",
            sa.controllers, sa.nodes
        );
        std::process::exit(2);
    }
    if sa.failures == 0 || sa.failures >= sa.controllers {
        eprintln!(
            "--failures must leave at least one controller standing \
             ({} failures, {} controllers)",
            sa.failures, sa.controllers
        );
        std::process::exit(2);
    }
    if sa.flows == 0 {
        eprintln!("--flows needs a positive integer argument");
        std::process::exit(2);
    }
    sa
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "scale_sweep flags: [--nodes N] [--controllers K] [--failures F]\n\
             \x20                  [--flows N] [--headroom H]\n\
             --nodes        Waxman switch count (default 1000)\n\
             --controllers  placed controllers (default 32)\n\
             --failures     simultaneous failures per scenario (default 3)\n\
             --flows        routed flows over bounded endpoint pools (default 1024)\n\
             --headroom     uniform auto-capacity factor over the peak load (default 1.5)\n\
             plus the common sweep flags:"
        );
    }
    let mut rest = Vec::new();
    let mut opts = EvalOptions::from_args_partial(std::env::args().skip(1), &mut rest);
    let sa = parse_scale_args(rest);
    // The MILP is out of scope at this scale, and eager cache warming would
    // reintroduce the all-pairs cost the drill exists to avoid.
    opts.skip_optimal = true;
    opts.eager_warm = false;
    // The recorder backs the live-peak accounting below even when no
    // telemetry export was requested.
    pm_obs::enable();
    let _plane = opts.start_telemetry_plane();

    eprintln!(
        "scale_sweep: generating waxman n={} (beta {:.4}, seed {})...",
        sa.nodes,
        scale_beta(sa.nodes),
        opts.seed
    );
    let wan = build_wan(&WanSpec {
        nodes: sa.nodes,
        controllers: sa.controllers,
        flows: sa.flows,
        headroom: sa.headroom,
        seed: opts.seed,
    });
    let (net, edges, flow_count) = (&wan.net, wan.edges, wan.flows);
    eprintln!(
        "scale_sweep: {} edges, {} controllers, {} flows; network built...",
        edges,
        net.controllers().len(),
        flow_count
    );

    let engine = SweepEngine::new(net, opts.clone());
    let sel = engine.selection(sa.failures);
    let range = sel.shard_range(opts.shard);
    let cases_run = (range.end - range.start) as usize;
    let shard_note = match opts.shard {
        Some((i, m)) => format!(" (shard {i}/{m} of {})", sel.len()),
        None => String::new(),
    };
    eprintln!(
        "scale_sweep: {} of {} scenario(s){}{} on {} thread(s), batch {}...",
        cases_run,
        sel.space().count(),
        if sel.is_sampled() { " [sampled]" } else { "" },
        shard_note,
        opts.jobs,
        opts.batch
    );
    let cases = engine.sweep_selection(&sel);

    // The streaming-dispatch contract: live scenario storage never exceeds
    // jobs × batch entries. The engine counts it; hold it to account here.
    let snap = pm_obs::snapshot();
    let counter = |name: &str| -> u64 {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let live_peak = counter("sweep.scenario.live_peak");
    let live_bound = (opts.jobs as u64).saturating_mul(opts.batch as u64);
    assert!(
        live_peak <= live_bound,
        "streaming sweep materialized {live_peak} scenarios at once; \
         the contract bound is jobs*batch = {live_bound}"
    );

    let info = ScaleRunInfo {
        nodes: sa.nodes,
        edges,
        seed: opts.seed,
        controllers: net.controllers().len(),
        flows: flow_count,
        failures: sa.failures,
        space_size: sel.space().count(),
        selected: sel.len(),
        sampled: sel.is_sampled(),
        shard: opts.shard,
        cases_run: cases.len(),
        live_peak,
        live_bound,
    };

    println!(
        "scale_sweep — {} switches / {} controllers / {} failure(s), {} case(s)\n",
        info.nodes,
        info.controllers,
        info.failures,
        cases.len()
    );
    let stats = timing_stats(&cases);
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.algorithm.to_string(),
                format!("{:.3}", s.mean.as_secs_f64() * 1e3),
                format!("{:.3}", s.p95.as_secs_f64() * 1e3),
                format!("{:.3}", s.max.as_secs_f64() * 1e3),
                s.cases.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["algorithm", "mean ms", "p95 ms", "max ms", "cases"],
            &rows
        )
    );
    println!(
        "\nscenario space {} -> selected {}{}; live peak {live_peak} <= bound {live_bound}",
        info.space_size,
        info.selected,
        if info.sampled { " (seeded sample)" } else { "" }
    );

    if let Some(dir) = &opts.csv_dir {
        let (headers, rows) = case_rows(&cases);
        let header_refs: Vec<&str> = headers.to_vec();
        write_csv(dir, "scale_cases", &header_refs, &rows);
        write_case_jsonl(dir, &headers, &rows);
    }
    write_bench_scale_json(&opts, &info, &cases);
    opts.export_observability();
}

/// Deterministic per-case output rows: plan metrics only, no wall-clock
/// values, so shard outputs concatenate byte-identically.
fn case_rows(cases: &[pm_bench::CaseResult]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "case",
        "offline_switches",
        "offline_flows",
        "retro_programmability",
        "pm_programmability",
        "pg_programmability",
        "retro_recovered_flows",
        "pm_recovered_flows",
        "pg_recovered_flows",
        "pm_total_delay_ms",
    ];
    let rows = cases
        .iter()
        .map(|case| {
            let m = |name: &str| case.run(name).expect("heuristics always run");
            let pm = m("PM");
            vec![
                case.label.clone(),
                pm.metrics.offline_switches.to_string(),
                pm.metrics.offline_flows.to_string(),
                m("RetroFlow").metrics.total_programmability.to_string(),
                pm.metrics.total_programmability.to_string(),
                m("PG").metrics.total_programmability.to_string(),
                m("RetroFlow").metrics.recovered_flows.to_string(),
                pm.metrics.recovered_flows.to_string(),
                m("PG").metrics.recovered_flows.to_string(),
                format!("{:.6}", pm.total_delay),
            ]
        })
        .collect();
    (headers, rows)
}

/// The same rows as `scale_cases.csv`, one JSON object per line — the
/// mergeable JSON counterpart for sharded runs.
fn write_case_jsonl(dir: &std::path::Path, headers: &[&'static str], rows: &[Vec<String>]) {
    let mut out = String::new();
    for row in rows {
        out.push('{');
        for (i, (h, v)) in headers.iter().zip(row).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            // Only the case label is a string; every other column is numeric.
            if i == 0 {
                out.push_str(&format!("\"{h}\": \"{v}\""));
            } else {
                out.push_str(&format!("\"{h}\": {v}"));
            }
        }
        out.push_str("}\n");
    }
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(dir.join("scale_cases.jsonl"), out))
    {
        eprintln!("warning: could not write scale_cases.jsonl: {e}");
    }
}
