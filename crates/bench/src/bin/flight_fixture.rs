//! CI fixture for the flight recorder: runs a handful of real recovery
//! cases with the flight recorder armed, then panics on purpose, so the
//! panic hook's dump artifact can be validated and archived. Exits
//! nonzero by construction — a zero exit means the fixture is broken.
//!
//! Run: `cargo run -p pm-bench --bin flight_fixture -- --out FILE
//! [--cases N]`

use pm_bench::harness::{run_case, EvalOptions};
use pm_sdwan::{ControllerId, Programmability, SdWanBuilder};

fn main() {
    let mut out: Option<std::path::PathBuf> = None;
    let mut cases: usize = 5;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                out = Some(
                    args.next()
                        .unwrap_or_else(|| {
                            eprintln!("--out needs a file argument");
                            std::process::exit(2);
                        })
                        .into(),
                );
            }
            "--cases" => {
                cases = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--cases needs a positive integer argument");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other}; usage: flight_fixture --out FILE [--cases N]");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        eprintln!("flight_fixture: --out FILE is required");
        std::process::exit(2);
    });

    pm_obs::flight::arm_panic_hook(out);
    pm_obs::set_thread_label("flight-fixture-main");

    let net = SdWanBuilder::att_paper_setup().build().expect("paper net");
    let prog = Programmability::compute(&net);
    let opts = EvalOptions {
        skip_optimal: true,
        ..Default::default()
    };
    let n_controllers = net.controllers().len();
    for i in 0..cases.max(1) {
        let c = ControllerId(i % n_controllers);
        let case = run_case(&net, &prog, &[c], &opts);
        eprintln!(
            "flight_fixture: case {} ({}) ran {} algorithms",
            i,
            case.label,
            case.runs.len()
        );
    }
    panic!("flight_fixture: deliberate panic after {cases} cases (this is the fixture working)");
}
