//! Regenerates the paper's Table III: the default relationship between
//! controllers, switches, and the number of flows in the switches under the
//! ATT topology.
//!
//! Run: `cargo run -p pm-bench --bin table3 [--csv DIR]` (plus telemetry flags `--trace`/`--metrics`/`--prom`/`--events`/`--progress`; see `--help`)

use pm_bench::report::{render_table, write_csv};
use pm_bench::{EvalOptions, SweepEngine};
use pm_sdwan::{ControllerId, SdWanBuilder};
use pm_topo::att::PAPER_FLOW_COUNTS;

fn main() {
    let opts = EvalOptions::from_args();
    let _plane = opts.start_telemetry_plane();
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let engine = SweepEngine::new(&net, opts.clone());
    let cache = engine.cache();

    println!("Table III: controllers, switches, and per-switch flow counts (ATT topology)");
    println!("(\"ours\" = derived from the embedded ATT-like backbone; \"paper\" = Table III)\n");

    let mut rows = Vec::new();
    for c in 0..net.controllers().len() {
        let cid = ControllerId(c);
        let node = net.controllers()[c].node.index();
        for s in net.domain_switches(cid) {
            rows.push(vec![
                format!("C{node}"),
                format!("s{}", s.index()),
                net.gamma(s).to_string(),
                PAPER_FLOW_COUNTS[s.index()].to_string(),
            ]);
        }
    }
    let headers = ["controller", "switch", "flows (ours)", "flows (paper)"];
    print!("{}", render_table(&headers, &rows));

    println!();
    let mut load_rows = Vec::new();
    for c in 0..net.controllers().len() {
        let cid = ControllerId(c);
        let node = net.controllers()[c].node.index();
        load_rows.push(vec![
            format!("C{node}"),
            cache.controller_load(cid).to_string(),
            net.controllers()[c].capacity.to_string(),
            cache.residual_capacity(cid).to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["controller", "load", "capacity", "residual A_j^rest"],
            &load_rows
        )
    );

    let ours: u32 = net.switches().map(|s| net.gamma(s)).sum();
    let paper: u32 = PAPER_FLOW_COUNTS.iter().sum();
    println!("\ntotal flow-at-switch count: ours {ours}, paper {paper}");
    println!(
        "hub switch s13: ours {} flows (max), paper 213 (max)",
        net.gamma(pm_sdwan::SwitchId(13))
    );

    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "table3", &headers, &rows);
    }
    opts.export_observability();
}
