//! Shared construction of the large Waxman WAN the scale drills sweep.
//!
//! The scale binaries (`scale_sweep`, `timeline_sweep`) exercise the
//! engine on the same topology family: a connected Waxman graph whose β
//! shrinks with the node count so the average degree stays in the high
//! single digits, farthest-point controller placement,
//! nearest-controller domains, and a bounded random flow population over
//! small endpoint pools — no all-pairs computation anywhere, so memory
//! and time scale with the controller count and flow pool, not the
//! switch count squared.

use pm_sdwan::{nearest_controller_partition, spread_controllers, SdWan, SdWanBuilder, SwitchId};
use pm_topo::builders::{waxman, WaxmanParams};
use pm_topo::rng::DetRng;
use std::collections::HashSet;

/// What to generate: switch count, controllers, flow budget, capacity
/// headroom and the seed everything derives from.
#[derive(Debug, Clone)]
pub struct WanSpec {
    /// Waxman switch count.
    pub nodes: usize,
    /// Controllers to place by farthest-point traversal.
    pub controllers: usize,
    /// Flows to route over bounded endpoint pools.
    pub flows: usize,
    /// Uniform auto-capacity factor over the realized peak load.
    pub headroom: f64,
    /// Seed for the topology and the flow sample.
    pub seed: u64,
}

/// A generated WAN plus the shape facts the BENCH artifacts report.
#[derive(Debug)]
pub struct BuiltWan {
    /// The assembled network.
    pub net: SdWan,
    /// Edge count of the generated topology.
    pub edges: usize,
    /// The β the Waxman generator ran with.
    pub beta: f64,
    /// Flows actually routed (the sampler can fall short of the budget
    /// on tiny pools).
    pub flows: usize,
}

/// The β that keeps the expected Waxman degree in the high single digits
/// as the node count grows.
pub fn scale_beta(nodes: usize) -> f64 {
    (0.2 * (29.0 / (nodes.max(2) as f64 - 1.0)).sqrt()).min(0.35)
}

/// `size` distinct node indices, chosen by a partial Fisher–Yates shuffle.
fn sample_pool(rng: &mut DetRng, n: usize, size: usize) -> Vec<usize> {
    let mut all: Vec<usize> = (0..n).collect();
    let size = size.min(n);
    for i in 0..size {
        let j = i + (rng.next_u64() as usize) % (n - i);
        all.swap(i, j);
    }
    all.truncate(size);
    all
}

/// Up to `want` distinct `(src, dst)` pairs over bounded endpoint pools,
/// so the per-source and per-destination shortest-path caches stay small
/// no matter how large the topology is.
pub fn sample_flows(rng: &mut DetRng, n: usize, want: usize) -> Vec<(SwitchId, SwitchId)> {
    let pool = sample_pool(rng, n, 192.min(n));
    let mut pairs = Vec::with_capacity(want);
    let mut seen = HashSet::new();
    let mut misses = 0usize;
    while pairs.len() < want && misses < 20 * want + 100 {
        let src = pool[(rng.next_u64() as usize) % pool.len()];
        let dst = pool[(rng.next_u64() as usize) % pool.len()];
        if src == dst || !seen.insert((src, dst)) {
            misses += 1;
            continue;
        }
        pairs.push((SwitchId(src), SwitchId(dst)));
    }
    pairs
}

/// Generates the WAN of `spec`: topology, placement, domains, flows,
/// capacities. Deterministic in `spec.seed`; the phases record under the
/// `scale.topology` / `scale.placement` / `scale.build` spans when the
/// [`pm_obs`] recorder is on.
///
/// # Panics
///
/// Panics if the spec is out of range (`controllers` must be in
/// `2..=nodes`); the binaries validate flags before calling this.
pub fn build_wan(spec: &WanSpec) -> BuiltWan {
    let beta = scale_beta(spec.nodes);
    let params = WaxmanParams {
        nodes: spec.nodes,
        beta,
        seed: spec.seed,
        ..Default::default()
    };
    let g = {
        let _span = pm_obs::span("scale.topology");
        waxman(&params).expect("waxman parameters are valid")
    };
    let edges = g.edge_count();
    let (sites, domains, flows) = {
        let _span = pm_obs::span("scale.placement");
        let sites = spread_controllers(&g, spec.controllers).expect("connected by construction");
        let domains = nearest_controller_partition(&g, &sites).expect("sites are valid");
        let mut rng = DetRng::seed_from_u64(spec.seed ^ 0x5ca1e5eed);
        let flows = sample_flows(&mut rng, spec.nodes, spec.flows);
        (sites, domains, flows)
    };
    let flow_count = flows.len();
    let net = {
        let _span = pm_obs::span("scale.build");
        let mut b = SdWanBuilder::new(g);
        for &s in &sites {
            b = b.controller(s, 0);
        }
        b.domains(domains)
            .explicit_flows(flows)
            .auto_capacity(spec.headroom)
            .build()
            .expect("generated network is valid")
    };
    BuiltWan {
        net,
        edges,
        beta,
        flows: flow_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_in_the_seed() {
        let spec = WanSpec {
            nodes: 60,
            controllers: 5,
            flows: 40,
            headroom: 1.5,
            seed: 11,
        };
        let a = build_wan(&spec);
        let b = build_wan(&spec);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.net.switch_count(), 60);
        assert_eq!(a.net.controllers().len(), 5);
        assert_eq!(
            a.net.flows().len(),
            b.net.flows().len(),
            "same seed, same flows"
        );
        let c = build_wan(&WanSpec { seed: 12, ..spec });
        assert_ne!(a.edges, 0);
        assert!(
            a.edges != c.edges || a.flows != c.flows || a.net.flows() != c.net.flows(),
            "different seed must change the WAN"
        );
    }

    #[test]
    fn beta_shrinks_with_scale() {
        assert!(scale_beta(30) >= scale_beta(1000));
        assert!(scale_beta(1000) >= scale_beta(10_000));
        assert!(scale_beta(2) <= 0.35);
    }
}
