//! Flag validation of the sweep binaries: degenerate worker/batch settings
//! must die with a readable usage error, not a panic inside the dispatch
//! loop.

use std::process::Command;

fn scale_sweep(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_scale_sweep"))
        .args(args)
        .output()
        .expect("scale_sweep spawns")
}

#[test]
fn scale_sweep_rejects_zero_jobs_and_batch() {
    for flag in ["--jobs", "--batch"] {
        let out = scale_sweep(&[flag, "0"]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} 0 must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8(out.stderr).expect("usage error is UTF-8");
        assert!(
            stderr.contains(flag) && stderr.contains("positive"),
            "{flag} 0 must name the flag in a usage message, got: {stderr}"
        );
    }
}

#[test]
fn scale_sweep_rejects_non_numeric_jobs_and_batch() {
    for flag in ["--jobs", "--batch", "--max-scenarios"] {
        let out = scale_sweep(&[flag, "many"]);
        assert_eq!(out.status.code(), Some(2), "{flag} many must exit 2");
        let stderr = String::from_utf8(out.stderr).expect("usage error is UTF-8");
        assert!(stderr.contains(flag), "{flag}: {stderr}");
    }
}
