//! Custom topologies: run the recovery pipeline on a Waxman random WAN, or
//! on a Topology Zoo GraphML file supplied on the command line.
//!
//! Run: `cargo run -p pm-examples --bin custom_topology [file.graphml]`

use pm_core::{FmssmInstance, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{
    place_controllers, ControllerId, PlacementStrategy, PlanMetrics, Programmability, SdWanBuilder,
};
use pm_topo::builders::{waxman, WaxmanParams};
use pm_topo::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading Topology Zoo file {path}");
            zoo::load_graphml_file(&path)?
        }
        None => {
            println!("no GraphML given; generating a 30-node Waxman WAN (seed 7)");
            waxman(&WaxmanParams {
                nodes: 30,
                seed: 7,
                ..Default::default()
            })?
        }
    };
    println!(
        "topology: {} nodes, {} undirected links, connected = {}",
        graph.node_count(),
        graph.edge_count(),
        graph.is_connected()
    );

    // Place 5 controllers by k-center and size capacity just above the
    // heaviest domain load.
    let sites = place_controllers(
        &graph,
        5.min(graph.node_count() / 2),
        PlacementStrategy::KCenter,
    )?;
    let mut builder = SdWanBuilder::new(graph);
    for &s in &sites {
        builder = builder.controller(s, u32::MAX / 4); // sized after build
    }
    // First build with huge capacity to learn the loads, then rebuild.
    let probe = builder.clone().build()?;
    let max_load = (0..sites.len())
        .map(|c| probe.controller_load(ControllerId(c)))
        .max()
        .unwrap_or(0);
    let capacity = (max_load as f64 * 1.02) as u32 + 1;
    let mut builder = SdWanBuilder::new(probe.topology().clone());
    for &s in &sites {
        builder = builder.controller(s, capacity);
    }
    let net = builder.build()?;
    println!(
        "controllers at {:?}, capacity {capacity} each",
        sites.iter().map(|s| s.index()).collect::<Vec<_>>()
    );

    let prog = Programmability::compute(&net);
    // Fail the two busiest controllers — the hardest scenario.
    let mut by_load: Vec<ControllerId> = (0..sites.len()).map(ControllerId).collect();
    by_load.sort_by_key(|&c| std::cmp::Reverse(net.controller_load(c)));
    let failed = &by_load[..2.min(by_load.len().saturating_sub(1))];
    println!(
        "failing the busiest controllers: {:?}",
        failed.iter().map(|c| c.index()).collect::<Vec<_>>()
    );
    let scenario = net.fail(failed)?;
    let inst = FmssmInstance::new(&scenario, &prog);

    for algo in [&RetroFlow::new() as &dyn RecoveryAlgorithm, &Pm::new()] {
        let plan = algo.recover(&inst)?;
        plan.validate(&scenario, &prog, algo.is_flow_level())?;
        let metrics = PlanMetrics::compute(&scenario, &prog, &plan, algo.middle_layer_ms());
        println!(
            "{:<10} recovered {}/{} recoverable flows, total programmability {}, \
             {} of {} switches",
            algo.name(),
            metrics.recovered_flows,
            metrics.recoverable_flows,
            metrics.total_programmability,
            metrics.recovered_switches,
            metrics.offline_switches,
        );
    }
    Ok(())
}
