//! Solver tour: the FMSSM problem end to end on a small grid network —
//! exact branch-and-bound versus the PM heuristic — plus direct use of the
//! MILP substrate for a custom model.
//!
//! Run: `cargo run -p pm-examples --bin solver_tour`

use pm_core::{DelayBound, FmssmInstance, Optimal, Pm, RecoveryAlgorithm};
use pm_milp::{MilpSolver, Model, Sense, VarKind};
use pm_sdwan::{ControllerId, PlanMetrics, Programmability, SdWanBuilder};
use pm_topo::{builders, NodeId};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: exact vs heuristic on a 4x4 grid SD-WAN. ---
    let net = SdWanBuilder::new(builders::grid(4, 4))
        .controller(NodeId(0), 700)
        .controller(NodeId(15), 700)
        .build()?;
    let prog = Programmability::compute(&net);
    let scenario = net.fail(&[ControllerId(0)])?;
    let inst = FmssmInstance::new(&scenario, &prog);

    let pm_plan = Pm::new().recover(&inst)?;
    let pm_metrics = PlanMetrics::compute(&scenario, &prog, &pm_plan, 0.0);
    println!(
        "PM:      total programmability {}, objective {:.4}",
        pm_metrics.total_programmability,
        inst.objective(&pm_metrics.per_flow_programmability, true)
    );

    let outcome = Optimal::new()
        .time_limit(Duration::from_secs(30))
        .delay_bound(DelayBound::IdealG)
        .solve_detailed(&inst)?;
    let opt_metrics = PlanMetrics::compute(&scenario, &prog, &outcome.plan, 0.0);
    println!(
        "Optimal: total programmability {}, objective {:.4} ({}, {} nodes, {:?})",
        opt_metrics.total_programmability,
        outcome.objective,
        if outcome.proved_optimal() {
            "proved"
        } else {
            "best effort"
        },
        outcome.nodes,
        outcome.elapsed
    );
    println!(
        "PM achieves {:.1}% of the exact objective",
        100.0 * inst.objective(&pm_metrics.per_flow_programmability, true) / outcome.objective
    );

    // --- Part 2: the MILP substrate directly (a small facility problem).---
    // Open at most 2 of 3 facilities (cost 3, 4, 5); each of 4 clients must
    // be served by an open facility; maximize service profit − open cost.
    let mut model = Model::new();
    let open: Vec<_> = (0..3)
        .map(|f| model.add_binary(format!("open{f}")))
        .collect();
    let profit = [
        [9.0, 7.0, 2.0],
        [5.0, 8.0, 3.0],
        [2.0, 6.0, 8.0],
        [3.0, 4.0, 9.0],
    ];
    let mut serve = Vec::new();
    for (cl, row) in profit.iter().enumerate() {
        let vars: Vec<_> = (0..3)
            .map(|f| model.add_binary(format!("serve{cl}_{f}")))
            .collect();
        // Exactly one facility serves each client; only if open.
        model.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Eq, 1.0);
        for f in 0..3 {
            model.add_constraint([(vars[f], 1.0), (open[f], -1.0)], Sense::Le, 0.0);
        }
        serve.push((vars, row));
    }
    model.add_constraint(open.iter().map(|&v| (v, 1.0)), Sense::Le, 2.0);
    let mut objective = vec![(open[0], -3.0), (open[1], -4.0), (open[2], -5.0)];
    for (vars, row) in &serve {
        for f in 0..3 {
            objective.push((vars[f], row[f]));
        }
    }
    model.maximize(objective);

    let result = MilpSolver::new().solve(&model);
    let sol = result.solution.expect("feasible");
    println!(
        "\nfacility model: objective {:.1}, status {:?}",
        sol.objective, result.status
    );
    for (f, &var) in open.iter().enumerate() {
        if sol.value(var) > 0.5 {
            println!("  facility {f} open");
        }
    }

    // Bonus: the same model relaxed, straight from the simplex.
    let lp = pm_milp::simplex::solve_relaxation(&model, &Default::default());
    if let Some(lp) = lp.solution() {
        println!("  LP relaxation bound: {:.2}", lp.objective);
    }
    let _ = VarKind::Binary; // (VarKind is part of the public tour)
    Ok(())
}
