//! Failure drill: sweep every single and double controller failure,
//! compare the four recovery algorithms, and show the hybrid two-table
//! data plane rerouting a recovered flow.
//!
//! Run: `cargo run --release -p pm-examples --bin failure_drill`

use pm_core::{FmssmInstance, Pg, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::hybrid::{HybridTable, RoutingMode, TableHit};
use pm_sdwan::{ControllerId, FlowId, PlanMetrics, Programmability, SdWanBuilder, SwitchId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = SdWanBuilder::att_paper_setup().build()?;
    let prog = Programmability::compute(&net);
    let m = net.controllers().len();

    // Enumerate all 1- and 2-controller failures.
    let mut cases: Vec<Vec<ControllerId>> = Vec::new();
    for a in 0..m {
        cases.push(vec![ControllerId(a)]);
        for b in a + 1..m {
            cases.push(vec![ControllerId(a), ControllerId(b)]);
        }
    }

    println!(
        "{:<12} {:>10} {:>10} {:>10}   (total programmability)",
        "case", "RetroFlow", "PM", "PG"
    );
    let mut worst: Option<(String, f64)> = None;
    for failed in &cases {
        let scenario = net.fail(failed)?;
        let inst = FmssmInstance::new(&scenario, &prog);
        let label: Vec<String> = failed
            .iter()
            .map(|c| net.controllers()[c.index()].node.index().to_string())
            .collect();
        let label = format!("({})", label.join(","));

        let mut totals = Vec::new();
        for algo in [
            &RetroFlow::new() as &dyn RecoveryAlgorithm,
            &Pm::new(),
            &Pg::new(),
        ] {
            let plan = algo.recover(&inst)?;
            plan.validate(&scenario, &prog, algo.is_flow_level())?;
            let metrics = PlanMetrics::compute(&scenario, &prog, &plan, algo.middle_layer_ms());
            totals.push(metrics.total_programmability);
        }
        println!(
            "{:<12} {:>10} {:>10} {:>10}",
            label, totals[0], totals[1], totals[2]
        );
        let ratio = totals[1] as f64 / totals[0].max(1) as f64;
        if worst.as_ref().map_or(true, |(_, w)| ratio > *w) {
            worst = Some((label, ratio));
        }
    }
    if let Some((label, ratio)) = worst {
        println!(
            "\nlargest PM gain over RetroFlow: {:.0}% in case {label}",
            ratio * 100.0
        );
    }

    // Data-plane view: recover one flow at the hub per-flow and watch the
    // two-table pipeline.
    println!("\n--- hybrid data plane demo (paper Fig. 2) ---");
    let scenario = net.fail(&[ControllerId(3), ControllerId(4)])?;
    let inst = FmssmInstance::new(&scenario, &prog);
    let plan = Pm::new().recover(&inst)?;
    let hub = SwitchId(13);
    let mut table = HybridTable::from_legacy_spf(net.topology(), hub, RoutingMode::Hybrid)?;
    // Take one flow PM recovered at the hub and one it left on legacy mode.
    let recovered: Vec<FlowId> = plan
        .sdn_selections()
        .filter(|&(s, _, _)| s == hub)
        .map(|(_, l, _)| l)
        .collect();
    let legacy =
        scenario.offline_flows().iter().copied().find(|&l| {
            net.flow(l).traverses(hub) && net.flow(l).dst != hub && !recovered.contains(&l)
        });
    if let (Some(&sdn_flow), Some(legacy_flow)) = (recovered.first(), legacy) {
        // The controller steers the SDN-mode flow onto its second-best
        // loop-free next hop; the legacy flow keeps following OSPF.
        let dst = net.flow(sdn_flow).dst;
        let pc = pm_topo::paths::PathCounts::toward(net.topology(), dst.node());
        let mut hops = pc.next_hops(net.topology(), hub.node());
        let _ = hops.next();
        if let Some(alt) = hops.next() {
            table.install_flow_entry(sdn_flow, SwitchId(alt.index()));
        }
        let f1 = table.lookup(sdn_flow, dst).expect("route exists");
        println!(
            "flow {sdn_flow} at {hub}: {:?} via {} (controller-programmed)",
            f1.hit, f1.next_hop
        );
        let dst2 = net.flow(legacy_flow).dst;
        let f2 = table.lookup(legacy_flow, dst2).expect("route exists");
        assert_eq!(f2.hit, TableHit::LegacyTable);
        println!(
            "flow {legacy_flow} at {hub}: {:?} via {} (OSPF fallback)",
            f2.hit, f2.next_hop
        );
    }
    Ok(())
}
