//! Recovery timeline: animate the (13, 20) headline failure with the
//! discrete-event simulator and print what happens, millisecond by
//! millisecond — fallback to OSPF, role handshakes, FlowMod waves, and the
//! moment programmability is restored.
//!
//! Run: `cargo run --release -p pm-examples --bin recovery_timeline`

use pm_core::{FmssmInstance, Pg, Pm, RecoveryAlgorithm};
use pm_sdwan::{ControllerId, PlanMetrics, Programmability, SdWanBuilder};
use pm_simctl::{RecoveryTiming, SimTime, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = SdWanBuilder::att_paper_setup().build()?;
    let prog = Programmability::compute(&net);
    let failed = [ControllerId(3), ControllerId(4)]; // C13 and C20
    let scenario = net.fail(&failed)?;
    let inst = FmssmInstance::new(&scenario, &prog);

    println!("t=100.0ms  controllers C13 and C20 fail");
    println!(
        "           {} switches offline, {} flows lose programmability",
        scenario.offline_switches().len(),
        scenario.offline_flows().len()
    );
    println!("           hybrid switches fall back to their legacy (OSPF) tables");

    for algo in [&Pm::new() as &dyn RecoveryAlgorithm, &Pg::new()] {
        let t0 = std::time::Instant::now();
        let plan = algo.recover(&inst)?;
        let compute_ms = t0.elapsed().as_secs_f64() * 1e3;
        let metrics = PlanMetrics::compute(&scenario, &prog, &plan, algo.middle_layer_ms());

        let mut sim = Simulation::new(&net);
        sim.schedule_failure(SimTime::from_ms(100.0), &failed);
        // Recovery starts after failure detection (10 ms, generous BFD
        // figure) plus the algorithm's own computation time.
        let start = 100.0 + 10.0 + compute_ms;
        sim.schedule_recovery(
            SimTime::from_ms(start),
            &scenario,
            &plan,
            RecoveryTiming {
                middle_layer_ms: algo.middle_layer_ms(),
                ..Default::default()
            },
        );
        let report = sim.run(SimTime::from_ms(600_000.0))?;

        println!("\n--- {} ---", algo.name());
        println!(
            "t={start:.1}ms  plan handed to active controllers (compute took {compute_ms:.2} ms)"
        );
        println!(
            "           {} role handshakes, {} FlowMods ({} messages total)",
            report.role_requests_sent,
            report.flow_mods_sent,
            report.total_messages()
        );
        if let (Some(sw), Some(fl), Some(worst)) = (
            report.mean_switch_recovery_ms(),
            report.mean_flow_recovery_ms(),
            report.max_flow_recovery_ms(),
        ) {
            println!("           mean switch re-control latency: {sw:.2} ms after failure");
            println!("           mean flow re-programmability:  {fl:.2} ms after failure");
            println!("           slowest flow:                  {worst:.2} ms after failure");
        }
        println!(
            "           result: {}/{} recoverable flows, total programmability {}, \
             data plane continuous = {}",
            metrics.recovered_flows,
            metrics.recoverable_flows,
            metrics.total_programmability,
            report.all_flows_deliverable
        );
    }
    Ok(())
}
