//! Quickstart: fail a controller on the paper's evaluation network and
//! recover path programmability with PM.
//!
//! Run: `cargo run -p pm-examples --bin quickstart`

use pm_core::{FmssmInstance, Pm, RecoveryAlgorithm};
use pm_sdwan::{ControllerId, PlanMetrics, Programmability, SdWanBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the paper's SD-WAN: the ATT-like backbone, six controllers
    //    with capacity 500, one flow per ordered switch pair.
    let net = SdWanBuilder::att_paper_setup().build()?;
    println!(
        "network: {} switches, {} links, {} flows, {} controllers",
        net.switch_count(),
        net.topology().directed_edge_count(),
        net.flows().len(),
        net.controllers().len()
    );

    // 2. Precompute per-flow programmability data (β and p̄).
    let prog = Programmability::compute(&net);

    // 3. Fail the controller that owns the St. Louis hub (C13 = index 3).
    let scenario = net.fail(&[ControllerId(3)])?;
    println!(
        "failure: {} offline switches, {} offline flows",
        scenario.offline_switches().len(),
        scenario.offline_flows().len()
    );

    // 4. Run the PM heuristic (Algorithm 1 of the paper).
    let instance = FmssmInstance::new(&scenario, &prog);
    let plan = Pm::new().recover(&instance)?;
    plan.validate(&scenario, &prog, false)?;

    // 5. Inspect the recovery.
    let metrics = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
    println!(
        "recovered {}/{} recoverable flows ({} offline total)",
        metrics.recovered_flows, metrics.recoverable_flows, metrics.offline_flows
    );
    println!("total programmability: {}", metrics.total_programmability);
    println!(
        "least programmability over recoverable flows: {}",
        metrics.min_programmability_recoverable()
    );
    println!(
        "per-flow control overhead: {:.3} ms",
        metrics.per_flow_overhead_ms()
    );
    for (s, c) in plan.mappings() {
        let node = &net.topology().node(s.node()).name;
        let ctrl_node = net.controllers()[c.index()].node;
        println!(
            "  {s} ({node}) -> {c} (at {}), {} SDN flows",
            net.topology().node(ctrl_node).name,
            plan.sdn_selections().filter(|&(ss, _, _)| ss == s).count()
        );
    }
    Ok(())
}
