//! Support library for the runnable examples. The examples themselves live
//! in `src/bin/`; run them with e.g. `cargo run -p pm-examples --bin
//! quickstart`.
