//! Properties of the colexicographic scenario space and the streaming
//! sweep built on it: rank/unrank roundtrips, bijection over the whole
//! space, and byte-identical shard unions.

use pm_bench::{binomial, EvalOptions, ScenarioSelection, ScenarioSpace, SweepEngine};
use pm_sdwan::{ControllerId, SdWan, SdWanBuilder};
use pm_topo::rng::DetRng;
use pm_topo::{builders, NodeId};
use proptest::prelude::*;

/// A sorted random `f`-subset of `0..n`, drawn without replacement.
fn random_subset(rng: &mut DetRng, n: usize, f: usize) -> Vec<ControllerId> {
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..f {
        let j = i + (rng.next_u64() as usize) % (n - i);
        pool.swap(i, j);
    }
    pool.truncate(f);
    pool.sort_unstable();
    pool.into_iter().map(ControllerId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `unrank(rank(s)) == s` for random subsets over n ≤ 64, f ≤ 6.
    #[test]
    fn unrank_inverts_rank(spec in (1usize..=64, 1usize..=6, 0u64..1_000_000)
        .prop_filter_map("f <= n", |(n, f, seed)| (f <= n).then_some((n, f, seed))))
    {
        let (n, f, seed) = spec;
        let space = ScenarioSpace::new(n, f);
        let mut rng = DetRng::seed_from_u64(seed);
        let subset = random_subset(&mut rng, n, f);
        let rank = space.rank(&subset);
        prop_assert!(rank < space.count(), "rank {} out of range {}", rank, space.count());
        prop_assert_eq!(space.unrank(rank), subset);
    }

    /// `rank(unrank(r)) == r` for random ranks over the same shapes.
    #[test]
    fn rank_inverts_unrank(spec in (1usize..=64, 1usize..=6, 0u64..u64::MAX)
        .prop_filter_map("f <= n", |(n, f, seed)| (f <= n).then_some((n, f, seed))))
    {
        let (n, f, seed) = spec;
        let space = ScenarioSpace::new(n, f);
        let rank = seed % space.count();
        let subset = space.unrank(rank);
        prop_assert_eq!(subset.len(), f);
        prop_assert!(subset.windows(2).all(|w| w[0] < w[1]), "not ascending: {:?}", subset);
        prop_assert!(subset.last().unwrap().0 < n);
        prop_assert_eq!(space.rank(&subset), rank);
    }
}

/// Exhaustive bijection check on every small shape: unranking the whole
/// range yields each subset exactly once, in strictly increasing colex
/// order, and ranking maps each back.
#[test]
fn unrank_is_a_bijection_for_small_spaces() {
    for n in 1..=10usize {
        for f in 1..=n {
            let space = ScenarioSpace::new(n, f);
            assert_eq!(space.count(), binomial(n, f), "C({n},{f})");
            let mut prev: Option<Vec<ControllerId>> = None;
            for rank in 0..space.count() {
                let subset = space.unrank(rank);
                assert_eq!(space.rank(&subset), rank, "n={n} f={f}");
                if let Some(prev) = &prev {
                    // Colex order: the reversed sequences compare
                    // lexicographically, so strict growth means all-distinct
                    // and properly ordered in one check.
                    let colex = |s: &Vec<ControllerId>| -> Vec<ControllerId> {
                        s.iter().rev().copied().collect()
                    };
                    assert!(
                        colex(prev) < colex(&subset),
                        "n={n} f={f} rank={rank}: {prev:?} !< {subset:?}"
                    );
                }
                prev = Some(subset);
            }
        }
    }
}

fn shard_test_net() -> SdWan {
    // A 3×4 grid with four controllers: C(4,2) = 6 two-failure scenarios.
    SdWanBuilder::new(builders::grid(3, 4))
        .controller(NodeId(0), 500)
        .controller(NodeId(3), 500)
        .controller(NodeId(8), 500)
        .controller(NodeId(11), 500)
        .build()
        .unwrap()
}

/// The deterministic slice of a sweep's output that shard unions must
/// reproduce byte-for-byte: labels, failed sets and all plan metrics —
/// everything except wall-clock timings.
fn fingerprint(cases: &[pm_bench::CaseResult]) -> String {
    let mut out = String::new();
    for case in cases {
        out.push_str(&case.label);
        for run in &case.runs {
            out.push_str(&format!(
                "|{}:{}:{}:{}:{:.9}",
                run.name,
                run.metrics.total_programmability,
                run.metrics.recovered_flows,
                run.metrics.recovered_switches,
                run.total_delay
            ));
        }
        out.push('\n');
    }
    out
}

/// `--shard i/m` over all i, concatenated in rank order, must equal the
/// unsharded sweep byte-for-byte — whatever the worker count.
#[test]
fn shard_union_is_byte_identical_across_job_counts() {
    let net = shard_test_net();
    let baseline = {
        let opts = EvalOptions {
            skip_optimal: true,
            jobs: 1,
            ..Default::default()
        };
        let engine = SweepEngine::new(&net, opts);
        fingerprint(&engine.sweep(2))
    };
    for jobs in [1usize, 8] {
        for m in [1usize, 2, 3, 6] {
            let mut merged = String::new();
            for i in 1..=m {
                let opts = EvalOptions {
                    skip_optimal: true,
                    jobs,
                    shard: Some((i, m)),
                    batch: 2,
                    ..Default::default()
                };
                let engine = SweepEngine::new(&net, opts);
                merged.push_str(&fingerprint(&engine.sweep(2)));
            }
            assert_eq!(
                baseline, merged,
                "shard union diverged at jobs={jobs} m={m}"
            );
        }
    }
}

/// Sharding composes with sampling: shards of a sampled selection cover
/// exactly the sampled ranks, in order, with no overlap.
#[test]
fn shards_partition_a_sampled_selection() {
    let space = ScenarioSpace::new(12, 3); // C(12,3) = 220
    let sel = ScenarioSelection::sampled(space, 37, 7);
    assert!(sel.is_sampled());
    assert_eq!(sel.len(), 37);
    let all: Vec<u64> = (0..sel.len()).map(|p| sel.rank_at(p)).collect();
    for m in [1usize, 2, 5, 37, 40] {
        let mut union = Vec::new();
        for i in 1..=m {
            let range = sel.shard_range(Some((i, m)));
            for p in range {
                union.push(sel.rank_at(p));
            }
        }
        assert_eq!(union, all, "m={m}");
    }
}
