//! The observability layer's core guarantee: recording never perturbs
//! results.
//!
//! Enabling the [`pm_obs`] recorder is process-global and one-way, so the
//! whole disabled-then-enabled comparison lives in a single test function —
//! the disabled half must run before any `enable()` in this binary.

use pm_bench::figures::{bench_sweep_json, metrics_report};
use pm_bench::{CaseResult, EvalOptions, SweepEngine};
use pm_sdwan::{SdWan, SdWanBuilder};
use pm_topo::{builders, NodeId};

fn small_net() -> SdWan {
    SdWanBuilder::new(builders::grid(3, 4))
        .controller(NodeId(0), 200)
        .controller(NodeId(3), 200)
        .controller(NodeId(8), 200)
        .controller(NodeId(11), 200)
        .all_pairs_flows()
        .build()
        .expect("grid network builds")
}

fn options(jobs: usize) -> EvalOptions {
    EvalOptions {
        jobs,
        skip_optimal: true,
        ..EvalOptions::default()
    }
}

/// Metric tables plus the sweep-JSON skeleton for k = 1..=3 at `jobs`.
fn recorded_outputs(net: &SdWan, jobs: usize) -> String {
    let opts = options(jobs);
    let engine = SweepEngine::new(net, opts.clone());
    let mut out = String::new();
    let sweeps: Vec<(usize, Vec<CaseResult>)> = (1..=3).map(|k| (k, engine.sweep(k))).collect();
    for (k, cases) in &sweeps {
        out.push_str(&metrics_report(cases, *k, "obs", true, &opts));
    }
    // The pure JSON builder (no phase breakdown): its body is part of the
    // recorded output and must not move when the recorder is on.
    let refs: Vec<(usize, &[CaseResult])> =
        sweeps.iter().map(|(k, c)| (*k, c.as_slice())).collect();
    let json = bench_sweep_json("obs", jobs, &refs);
    // Blank the wall-clock numbers and the worker count itself;
    // scheduling noise is not under test.
    for line in json.lines() {
        if !line.contains("\"mean_ms\"") && !line.trim_start().starts_with("\"jobs\":") {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn metrics_enabled_runs_are_byte_identical_to_disabled_runs() {
    let net = small_net();

    // Phase 1: recorder off (nothing in this binary has enabled it yet).
    assert!(!pm_obs::enabled(), "recorder must start disabled");
    let off_serial = recorded_outputs(&net, 1);
    let off_parallel = recorded_outputs(&net, 8);
    assert_eq!(off_serial, off_parallel);

    // Phase 2: recorder on — results must not move by a byte.
    pm_obs::enable();
    let on_serial = recorded_outputs(&net, 1);
    let on_parallel = recorded_outputs(&net, 8);
    assert_eq!(off_serial, on_serial, "jobs=1: recording changed results");
    assert_eq!(
        off_parallel, on_parallel,
        "jobs=8: recording changed results"
    );

    // Phase 3: the run actually recorded something useful.
    let snap = pm_obs::snapshot();
    assert!(
        snap.spans.iter().any(|s| s.name == "pm.recover"),
        "PM spans recorded"
    );
    assert!(
        snap.spans.iter().any(|s| s.name == "sweep.case"),
        "sweep spans recorded"
    );
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    assert!(counter("sweep.cases").is_some(), "case counter recorded");
    assert!(
        counter("pm.sdn_mode_picks").is_some(),
        "PM mode-pick counter recorded"
    );
    assert!(
        snap.histograms
            .iter()
            .any(|(n, _)| n == "sweep.queue_wait_ns"),
        "queue-wait histogram recorded"
    );
    assert!(
        counter("sweep.scenario.delta_cases").is_some(),
        "incremental sweep path records its delta counters"
    );

    // Phase 3b: the incremental-solver counters are optional metrics — no
    // schema bump — that appear once the exact solver runs with the
    // recorder on.
    assert!(
        counter("milp.simplex.refactorizations").is_none(),
        "no MILP ran yet, so no simplex counters"
    );
    {
        use pm_core::{FmssmInstance, Optimal};
        use pm_sdwan::{ControllerId, Programmability};
        let prog = Programmability::compute(&net);
        let scenario = net.fail(&[ControllerId(0)]).expect("valid case");
        let inst = FmssmInstance::new(&scenario, &prog);
        Optimal::new()
            .time_limit(std::time::Duration::from_secs(5))
            .solve_detailed(&inst)
            .expect("small instance solves");
    }
    let snap = pm_obs::snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    assert!(
        counter("milp.simplex.refactorizations").is_some(),
        "revised simplex reports refactorization work"
    );
    assert!(
        counter("milp.basis.reuse_hits").is_some(),
        "basis reuse across B&B nodes is observable"
    );
    assert_eq!(
        pm_obs::METRICS_SCHEMA_VERSION,
        1,
        "optional counters must not bump the metrics schema"
    );

    // Phase 4: exported metrics JSON is valid and its layout is pinned.
    let metrics = pm_obs::metrics_json();
    pm_obs::json::validate(&metrics).expect("metrics JSON parses");
    assert!(
        metrics.starts_with(&format!(
            "{{\n  \"schema_version\": {},\n  \"counters\": {{",
            pm_obs::METRICS_SCHEMA_VERSION
        )),
        "metrics layout is pinned:\n{}",
        &metrics[..metrics.len().min(200)]
    );
    assert!(metrics.contains("\"histograms\""));
    assert!(metrics.contains("\"spans\""));

    // The trace export is valid Chrome trace_event JSON with thread names.
    let trace = pm_obs::chrome_trace_json();
    pm_obs::json::validate(&trace).expect("trace JSON parses");
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\": \"M\""));
    assert!(trace.contains("sweep-worker-0"));
    assert!(trace.contains("\"ph\": \"X\""));
}
