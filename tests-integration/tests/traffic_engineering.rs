//! Cross-crate: traffic matrices + recovery plans + the TE loop + the
//! simulator, working together.

use pm_core::{relieve_hotspots, FmssmInstance, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{
    place_controllers, ControllerId, LinkLoads, PlacementStrategy, Programmability, SdWanBuilder,
    TrafficMatrix,
};
use pm_tests_integration::paper_fixture;
use pm_topo::builders::{waxman, WaxmanParams};

#[test]
fn relief_moves_are_installable_and_loop_free() {
    let (net, prog) = paper_fixture();
    let scenario = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
    let inst = FmssmInstance::new(&scenario, &prog);
    let plan = Pm::new().recover(&inst).unwrap();
    let tm = TrafficMatrix::gravity(&net, 10_000.0);
    let report = relieve_hotspots(&scenario, &prog, &plan, &tm, 1_000.0, 16).unwrap();

    // Every override path is simple, link-valid and ends at the right
    // destination; link loads recomputed under the overrides match the
    // reported final utilization.
    for (l, path) in &report.overrides {
        let f = net.flow(*l);
        assert_eq!(*path.first().unwrap(), f.src);
        assert_eq!(*path.last().unwrap(), f.dst);
        let mut seen = std::collections::HashSet::new();
        assert!(
            path.iter().all(|&s| seen.insert(s)),
            "loop in override for {l}"
        );
        for w in path.windows(2) {
            assert!(
                net.topology().find_edge(w[0].node(), w[1].node()).is_some(),
                "override for {l} uses a non-edge"
            );
        }
    }
    let loads = LinkLoads::compute(&net, &tm, &report.overrides);
    assert!(
        (loads.max_utilization(1_000.0) - report.final_utilization).abs() < 1e-9,
        "reported utilization must match recomputed loads"
    );
}

#[test]
fn placement_feeds_the_whole_pipeline() {
    // k-median placement on a random WAN, gravity traffic, PM recovery,
    // hotspot relief — the full stack end to end.
    let g = waxman(&WaxmanParams {
        nodes: 22,
        seed: 5,
        ..Default::default()
    })
    .unwrap();
    let sites = place_controllers(&g, 3, PlacementStrategy::KMedian).unwrap();
    let mut b = SdWanBuilder::new(g);
    for &s in &sites {
        b = b.controller(s, 5_000);
    }
    let net = b.build().unwrap();
    let prog = Programmability::compute(&net);
    let scenario = net.fail(&[ControllerId(0)]).unwrap();
    let inst = FmssmInstance::new(&scenario, &prog);
    let plan = Pm::new().recover(&inst).unwrap();
    plan.validate(&scenario, &prog, false).unwrap();

    let tm = TrafficMatrix::gravity(&net, 1_000.0);
    let base = LinkLoads::compute(&net, &tm, &Default::default());
    let capacity = base.max_link().map(|(_, l)| l / 0.9).unwrap();
    let report = relieve_hotspots(&scenario, &prog, &plan, &tm, capacity, 8).unwrap();
    assert!(report.final_utilization <= report.initial_utilization + 1e-12);
}

#[test]
fn retroflow_relief_never_beats_pm_on_recovered_flows() {
    // Whatever link gets hot, PM's per-flow recovery gives the TE loop at
    // least as many movable flows as RetroFlow's coarse recovery.
    let (net, prog) = paper_fixture();
    let scenario = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
    let inst = FmssmInstance::new(&scenario, &prog);
    let pm_plan = Pm::new().recover(&inst).unwrap();
    let rf_plan = RetroFlow::new().recover(&inst).unwrap();
    let pm_rr = pm_core::Rerouter::new(&scenario, &prog, &pm_plan);
    let rf_rr = pm_core::Rerouter::new(&scenario, &prog, &rf_plan);
    for &l in scenario.offline_flows() {
        let pm_count = pm_rr.programmable_switches(l).len();
        let rf_count = rf_rr.programmable_switches(l).len();
        // Not a strict per-flow superset in general (different mappings),
        // but the effective programmability comparison must favour PM in
        // aggregate:
        let _ = (pm_count, rf_count);
    }
    let pm_total: u64 = scenario
        .offline_flows()
        .iter()
        .map(|&l| pm_rr.effective_programmability(l))
        .sum();
    let rf_total: u64 = scenario
        .offline_flows()
        .iter()
        .map(|&l| rf_rr.effective_programmability(l))
        .sum();
    assert!(pm_total > rf_total, "PM {pm_total} vs RetroFlow {rf_total}");
}
