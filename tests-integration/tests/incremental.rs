//! The incremental solver core's contract: every delta-updated structure
//! is indistinguishable from a fresh build.
//!
//! Property-tested over seeded Waxman WANs (the scale drills' topology
//! family): scenario deltas, scenario-programmability deltas and
//! workspace-reusing PM runs must equal their cold counterparts exactly,
//! and the sweep engine's delta path must reproduce the recompute path
//! byte for byte at every `--jobs` × `--shard` combination.

use pm_bench::{build_wan, CaseResult, EvalOptions, SweepEngine, WanSpec};
use pm_core::{FmssmInstance, Pm, PmWorkspace, RecoveryAlgorithm};
use pm_sdwan::{ControllerId, FailureScenario, Programmability, SdWan};
use pm_topo::rng::DetRng;
use proptest::prelude::*;

/// A small Waxman WAN in the scale binaries' family, sized for test speed.
fn wan(seed: u64, nodes: usize, controllers: usize) -> SdWan {
    build_wan(&WanSpec {
        nodes,
        controllers,
        flows: 96,
        headroom: 1.5,
        seed,
    })
    .net
}

/// `count` distinct f-subsets of `0..m`, each colex-adjacent chains can
/// walk; consecutive sets may differ in several controllers.
fn failure_sets(rng: &mut DetRng, m: usize, f: usize, count: usize) -> Vec<Vec<ControllerId>> {
    let mut sets = Vec::with_capacity(count);
    for _ in 0..count {
        let mut all: Vec<usize> = (0..m).collect();
        for i in 0..f {
            let j = i + (rng.next_u64() as usize) % (m - i);
            all.swap(i, j);
        }
        let mut failed: Vec<ControllerId> = all[..f].iter().map(|&c| ControllerId(c)).collect();
        failed.sort_by_key(|c| c.0);
        sets.push(failed);
    }
    sets
}

/// Advances `scenario` from its current failure set to `next` by a chain
/// of single (revived, failed) swaps — the sweep engine's delta walk.
fn walk_delta(scenario: &mut FailureScenario<'_>, next: &[ControllerId]) {
    let outs: Vec<ControllerId> = scenario
        .failed_controllers()
        .iter()
        .copied()
        .filter(|c| !next.contains(c))
        .collect();
    let ins: Vec<ControllerId> = next
        .iter()
        .copied()
        .filter(|c| !scenario.failed_controllers().contains(c))
        .collect();
    assert_eq!(outs.len(), ins.len(), "same failure count either side");
    for (&remove, &add) in outs.iter().zip(&ins) {
        scenario
            .apply_delta(remove, add)
            .expect("symmetric-difference swaps are valid");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Delta-walked scenarios equal fresh builds field for field
    /// (including the bit pattern of the ideal-delay bound) over random
    /// failure-set chains on seeded Waxman WANs.
    #[test]
    fn scenario_delta_chain_equals_fresh_builds(
        seed in 0u64..1_000,
        nodes in 40usize..100,
        f in 1usize..=3,
    ) {
        let net = wan(seed, nodes, 6);
        let mut rng = DetRng::seed_from_u64(seed ^ 0x5eed);
        let sets = failure_sets(&mut rng, 6, f, 6);
        let mut rolling = net.fail(&sets[0]).expect("valid case");
        for failed in &sets {
            walk_delta(&mut rolling, failed);
            let fresh = net.fail(failed).expect("valid case");
            prop_assert!(rolling == fresh, "delta diverged at {failed:?}");
        }
    }

    /// The scenario-projected programmability table stays equal to a fresh
    /// projection under the same delta chain.
    #[test]
    fn scenario_programmability_delta_equals_fresh_projection(
        seed in 0u64..1_000,
        nodes in 40usize..100,
        f in 1usize..=3,
    ) {
        let net = wan(seed, nodes, 6);
        let prog = Programmability::compute(&net);
        let mut rng = DetRng::seed_from_u64(seed ^ 0xab1e);
        let sets = failure_sets(&mut rng, 6, f, 6);
        let mut rolling = net.fail(&sets[0]).expect("valid case");
        let mut table = prog.scenario_table(&rolling);
        for failed in &sets {
            let before: Vec<ControllerId> = rolling.failed_controllers().to_vec();
            walk_delta(&mut rolling, failed);
            let outs: Vec<ControllerId> =
                before.iter().copied().filter(|c| !failed.contains(c)).collect();
            let ins: Vec<ControllerId> =
                failed.iter().copied().filter(|c| !before.contains(c)).collect();
            for (&remove, &add) in outs.iter().zip(&ins) {
                table.apply_delta(&net, &prog, remove, add);
            }
            prop_assert_eq!(&table, &prog.scenario_table(&rolling));
        }
    }

    /// PM run in a carried workspace produces the same plan as a cold run
    /// on every case of a chain: the workspace reuses allocations, never
    /// decisions.
    #[test]
    fn pm_workspace_chain_equals_cold_runs(
        seed in 0u64..1_000,
        nodes in 40usize..100,
        f in 1usize..=3,
    ) {
        let net = wan(seed, nodes, 6);
        let prog = Programmability::compute(&net);
        let mut rng = DetRng::seed_from_u64(seed ^ 0xcafe);
        let sets = failure_sets(&mut rng, 6, f, 6);
        let mut ws = PmWorkspace::default();
        for failed in &sets {
            let scenario = net.fail(failed).expect("valid case");
            let inst = FmssmInstance::new(&scenario, &prog);
            let warm = Pm::new().recover_in(&inst, &mut ws).expect("PM recovers");
            let cold = Pm::new().recover(&inst).expect("PM recovers");
            prop_assert_eq!(warm, cold, "workspace changed the plan at {:?}", failed);
        }
    }
}

/// All recorded result fields of a case — everything except wall-clock
/// times — as a comparable string.
fn fingerprint(case: &CaseResult) -> String {
    let runs: Vec<String> = case
        .runs
        .iter()
        .map(|r| {
            format!(
                "{}|{:?}|{}|{:?}",
                r.name,
                r.metrics,
                r.total_delay.to_bits(),
                r.proved_optimal
            )
        })
        .collect();
    format!("{}#{:?}#{}", case.label, case.failed, runs.join(";"))
}

fn sweep_fingerprints(net: &SdWan, opts: EvalOptions) -> Vec<String> {
    SweepEngine::new(net, opts)
        .sweep(2)
        .iter()
        .map(fingerprint)
        .collect()
}

/// The acceptance matrix: delta-path sweeps are byte-identical to the cold
/// recompute path at jobs ∈ {1, 8} × shard m ∈ {1, 3}, and the shards
/// reassemble the unsharded sweep.
#[test]
fn delta_sweeps_match_recompute_across_jobs_and_shards() {
    let net = wan(7, 80, 6);
    let base = EvalOptions {
        skip_optimal: true,
        batch: 4,
        ..Default::default()
    };
    let reference = sweep_fingerprints(
        &net,
        EvalOptions {
            jobs: 1,
            incremental: false,
            ..base.clone()
        },
    );
    assert!(!reference.is_empty());
    for jobs in [1usize, 8] {
        for m in [1usize, 3] {
            let mut union = Vec::new();
            for i in 1..=m {
                let opts = EvalOptions {
                    jobs,
                    shard: (m > 1).then_some((i, m)),
                    ..base.clone()
                };
                union.extend(sweep_fingerprints(&net, opts));
            }
            assert_eq!(
                union, reference,
                "delta path diverged from recompute at jobs={jobs} shards={m}"
            );
        }
    }
}
