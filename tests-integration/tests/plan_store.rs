//! Property tests for the `pmd` plan store: on seeded Waxman WANs, a
//! [`PlanStore`] lookup must be byte-identical to a fresh single-case
//! sweep-engine solve for **every** `f ≤ horizon` scenario, at any job
//! count — and the beyond-horizon fallback ([`Generation`]'s on-demand
//! solve) must equal a cold solve of the same failure set.

use pm_bench::{
    build_wan, EvalOptions, Generation, PlanStore, PmdConfig, ScenarioSpace, SweepEngine, WanSpec,
};
use pm_sdwan::ControllerId;
use proptest::prelude::*;

fn spec(nodes: usize, controllers: usize, seed: u64) -> WanSpec {
    WanSpec {
        nodes,
        controllers,
        flows: 200,
        headroom: 1.2,
        seed,
    }
}

fn engine_opts(jobs: usize) -> EvalOptions {
    EvalOptions {
        skip_optimal: true,
        jobs,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn store_lookups_equal_fresh_solves_for_every_scenario(
        (nodes, controllers, seed) in (24usize..=40, 4usize..=5, 0u64..1000),
    ) {
        let horizon = 2usize;
        let wan = build_wan(&spec(nodes, controllers, seed));

        // Build at jobs 1 and jobs 8: the stores must be byte-identical.
        let serial = {
            let engine = SweepEngine::new(&wan.net, engine_opts(1));
            PlanStore::build(&engine, horizon)
        };
        let parallel = {
            let engine = SweepEngine::new(&wan.net, engine_opts(8));
            PlanStore::build(&engine, horizon)
        };
        prop_assert_eq!(serial.len(), parallel.len());

        // Every f <= horizon scenario: the stored plan equals a fresh
        // single-case solve, bit for bit, through both stores.
        let fresh_engine = SweepEngine::new(&wan.net, engine_opts(1));
        let mut checked = 0u64;
        for f in 1..=horizon {
            let space = ScenarioSpace::new(controllers, f);
            for rank in 0..space.count() {
                let failed = space.unrank(rank);
                let fresh = fresh_engine.solve_plan(&failed);
                let fresh_text = fresh.plan.to_text();
                for store in [&serial, &parallel] {
                    let entry = store.lookup(&failed).expect("within horizon");
                    prop_assert_eq!(
                        &entry.plan_text, &fresh_text,
                        "seed {} nodes {} f={} rank {}: store != fresh solve",
                        seed, nodes, f, rank
                    );
                    prop_assert_eq!(
                        entry.min_programmability,
                        fresh.metrics.min_programmability
                    );
                    prop_assert_eq!(
                        entry.total_programmability,
                        fresh.metrics.total_programmability
                    );
                    prop_assert_eq!(entry.failed.clone(), failed.clone());
                }
                checked += 1;
            }
        }
        prop_assert_eq!(checked, serial.len());
    }

    #[test]
    fn beyond_horizon_fallback_equals_a_cold_solve(
        (nodes, seed) in (24usize..=40, 0u64..1000),
    ) {
        // 5 controllers, horizon 2: every 3-failure set is beyond the
        // store and must take the fallback path.
        let controllers = 5usize;
        let wan_spec = spec(nodes, controllers, seed);
        let generation = Generation::build(
            1,
            build_wan(&wan_spec).net,
            &PmdConfig { horizon: 2, jobs: 2, ..Default::default() },
        );
        let cold_net = build_wan(&wan_spec).net;
        let cold_engine = SweepEngine::new(&cold_net, engine_opts(1));

        let space = ScenarioSpace::new(controllers, 3);
        for rank in 0..space.count() {
            let failed = space.unrank(rank);
            prop_assert!(generation.store().lookup(&failed).is_none());
            let served = generation
                .solve_beyond_horizon(&failed)
                .expect("survivors remain");
            let cold = cold_engine.solve_plan(&failed);
            prop_assert_eq!(
                &served.plan_text,
                &cold.plan.to_text(),
                "seed {} rank {}: fallback != cold solve",
                seed,
                rank
            );
            prop_assert_eq!(served.min_programmability, cold.metrics.min_programmability);
            prop_assert_eq!(
                served.total_programmability,
                cold.metrics.total_programmability
            );
        }

        // A set the network cannot survive is a clean error, not a panic.
        let everyone: Vec<ControllerId> = (0..controllers).map(ControllerId).collect();
        prop_assert!(generation.solve_beyond_horizon(&everyone).is_err());
    }
}
