//! Schedule-independence of the parallel sweep engine.
//!
//! The acceptance bar for the worker pool: the *metric* tables a sweep
//! produces must be byte-identical whatever `--jobs` is set to, and across
//! repeated runs at the same setting. Only wall-clock timing may vary.
//!
//! Runs on a small generated topology (3×4 grid, four controllers) so the
//! full k = 1..=3 sweep stays fast in debug builds.

use pm_bench::figures::{bench_sweep_json, build_panels, metrics_report};
use pm_bench::{CaseResult, EvalOptions, SweepEngine};
use pm_sdwan::{SdWan, SdWanBuilder};
use pm_topo::{builders, NodeId};

/// A 12-node grid with four controllers — small, deterministic, and with
/// enough controllers for three simultaneous failures to leave a survivor.
fn small_net() -> SdWan {
    SdWanBuilder::new(builders::grid(3, 4))
        .controller(NodeId(0), 200)
        .controller(NodeId(3), 200)
        .controller(NodeId(8), 200)
        .controller(NodeId(11), 200)
        .all_pairs_flows()
        .build()
        .expect("grid network builds")
}

fn options(jobs: usize) -> EvalOptions {
    EvalOptions {
        jobs,
        skip_optimal: true,
        ..EvalOptions::default()
    }
}

/// Every metric table for k = 1..=3, concatenated into one string.
fn metric_tables(net: &SdWan, jobs: usize) -> String {
    let opts = options(jobs);
    let engine = SweepEngine::new(net, opts.clone());
    let mut out = String::new();
    for k in 1..=3 {
        let cases = engine.sweep(k);
        out.push_str(&metrics_report(&cases, k, "determinism", true, &opts));
    }
    out
}

#[test]
fn serial_and_parallel_sweeps_are_byte_identical() {
    let net = small_net();
    let serial = metric_tables(&net, 1);
    let parallel = metric_tables(&net, 8);
    assert!(
        !serial.is_empty() && serial.contains("determinism"),
        "report rendered"
    );
    assert_eq!(
        serial, parallel,
        "jobs=1 and jobs=8 must produce byte-identical metric tables"
    );
}

#[test]
fn repeated_parallel_sweeps_agree() {
    let net = small_net();
    let first = metric_tables(&net, 8);
    let second = metric_tables(&net, 8);
    assert_eq!(first, second, "two jobs=8 runs must agree byte-for-byte");
}

/// Blanks the wall-clock numbers and the worker count out of a
/// `BENCH_sweep.json` body, leaving only the schema skeleton.
fn mask_timings(json: &str) -> String {
    json.lines()
        .map(
            |line| match (line.find("\"mean_ms\""), line.find("\"cases\"")) {
                (Some(a), Some(b)) => format!("{}{}", &line[..a], &line[b..]),
                _ if line.trim_start().starts_with("\"jobs\":") => "  \"jobs\": _,".to_string(),
                _ => line.to_string(),
            },
        )
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn bench_sweep_json_schema_is_pinned_and_schedule_independent() {
    let net = small_net();
    let json_of = |jobs: usize| {
        let engine = SweepEngine::new(&net, options(jobs));
        let sweeps: Vec<(usize, Vec<CaseResult>)> = (1..=3).map(|k| (k, engine.sweep(k))).collect();
        let refs: Vec<(usize, &[CaseResult])> =
            sweeps.iter().map(|(k, c)| (*k, c.as_slice())).collect();
        bench_sweep_json("determinism", jobs, &refs)
    };
    let serial = json_of(1);
    let parallel = json_of(8);

    // Schema fields and layout are pinned — downstream tooling reads them.
    assert!(serial.starts_with("{\n  \"schema_version\": 1,\n"));
    assert!(serial.contains("  \"figure\": \"determinism\",\n"));
    assert!(serial.contains("  \"jobs\": 1,\n"));
    assert!(serial.contains("      \"failures\": 1,\n"));
    assert!(serial.contains("      \"failures\": 3,\n"));
    for algo in ["RetroFlow", "PM", "PG"] {
        assert!(
            serial.contains(&format!("{{\"name\": \"{algo}\", \"mean_ms\": ")),
            "missing algorithm record for {algo}"
        );
    }
    assert!(serial.contains("\"p95_ms\": "));
    assert!(serial.contains("\"max_ms\": "));
    assert!(serial.trim_end().ends_with('}'));

    // Everything but the wall-clock measurements (and the jobs count
    // itself) must be byte-identical across schedules.
    assert_eq!(mask_timings(&serial), mask_timings(&parallel));
}

#[test]
fn panels_are_schedule_independent_per_k() {
    let net = small_net();
    for k in 1..=3 {
        let serial = SweepEngine::new(&net, options(1));
        let parallel = SweepEngine::new(&net, options(8));
        let (h1, p1) = build_panels(&serial.sweep(k), false, true);
        let (h2, p2) = build_panels(&parallel.sweep(k), false, true);
        assert_eq!(h1, h2, "headers differ at k={k}");
        assert_eq!(p1, p2, "panel rows differ at k={k}");
    }
}
