//! Concurrency soak for the `pmd` serving path: client threads hammer
//! `POST /plan` and `GET /plans/<rank>` with overlapping requests while
//! `POST /reload` swaps the topology mid-flight — between two *different*
//! networks (4 vs 5 controllers), so a response mixing generations would
//! be caught by its own shape facts.
//!
//! Checks, per response: it parses, it names one generation, and every
//! field agrees with that generation's topology (controller count, store
//! size, rank bounds). Checks, globally: no deadlock (the test finishes),
//! no errors on always-valid requests, and every reload really landed.

use pm_bench::{build_wan, Generation, PmdConfig, PmdService, WanSpec};
use pm_obs::json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Generation id → its topology: odd ids get 5 controllers, even ids 4.
fn controllers_for(generation: u64) -> usize {
    if generation % 2 == 1 {
        5
    } else {
        4
    }
}

/// Plans in an `f ≤ 2` store over `n` controllers: `C(n,1) + C(n,2)`.
fn plans_for(n: usize) -> u64 {
    (n + n * (n - 1) / 2) as u64
}

fn start_service(jobs: usize) -> PmdService {
    let cfg = PmdConfig {
        horizon: 2,
        jobs,
        workers: 4,
        ..Default::default()
    };
    let source = Box::new(move |id| {
        let wan = build_wan(&WanSpec {
            nodes: 28,
            controllers: controllers_for(id),
            flows: 150,
            headroom: 1.2,
            seed: 7 + id % 2, // two fixed topologies, alternating
        });
        Ok(Generation::build(id, wan.net, &cfg))
    });
    PmdService::start("127.0.0.1:0", source, cfg).expect("pmd starts")
}

fn request(addr: SocketAddr, raw: &str) -> Result<(u16, json::Value), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    let (head, body) = text.split_once("\r\n\r\n").ok_or("no header/body split")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("no status code")?;
    let value = json::parse(body).map_err(|e| format!("unparseable body: {e}\n{body}"))?;
    Ok((status, value))
}

/// Asserts one 200 plan response is internally consistent with exactly
/// one topology generation.
fn check_consistency(v: &json::Value) -> Result<(), String> {
    let field = |k: &str| {
        v.get(k)
            .and_then(json::Value::as_u64)
            .ok_or_else(|| format!("response lacks {k}"))
    };
    let generation = field("generation")?;
    let store = v.get("store").ok_or("response lacks store")?;
    let in_store = |k: &str| {
        store
            .get(k)
            .and_then(json::Value::as_u64)
            .ok_or_else(|| format!("store lacks {k}"))
    };
    let n = controllers_for(generation);
    if in_store("controllers")? != n as u64 {
        return Err(format!(
            "generation {generation} must have {n} controllers, got {:?}",
            store.get("controllers")
        ));
    }
    if in_store("plans")? != plans_for(n) {
        return Err(format!(
            "generation {generation} must hold {} plans, got {:?}",
            plans_for(n),
            store.get("plans")
        ));
    }
    if let Some(rank) = v.get("rank").and_then(json::Value::as_u64) {
        if rank >= plans_for(n) {
            return Err(format!(
                "rank {rank} out of generation {generation}'s store of {}",
                plans_for(n)
            ));
        }
    }
    if v.get("plan").and_then(json::Value::as_str).is_none() {
        return Err("response lacks the plan text".into());
    }
    Ok(())
}

fn soak(jobs: usize) {
    const CLIENTS: usize = 8;
    const RELOADS: u64 = 4;

    let service = start_service(jobs);
    let addr = service.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let checked = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..CLIENTS {
            let stop = Arc::clone(&stop);
            let checked = Arc::clone(&checked);
            handles.push(scope.spawn(move || -> Result<(), String> {
                let mut i = t; // offset the streams so ranks overlap but interleave
                while !stop.load(Ordering::Relaxed) {
                    // Requests valid in BOTH topologies: controller
                    // indices < 4, ranks < the 4-controller store size.
                    let (status, v) = match i % 3 {
                        0 => {
                            let body = format!("{{\"controllers\": [{}]}}", i % 4);
                            request(
                                addr,
                                &format!(
                                    "POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                                    body.len()
                                ),
                            )?
                        }
                        1 => {
                            let body =
                                format!("{{\"controllers\": [{}, {}]}}", i % 4, (i + 1 + i % 3) % 4);
                            request(
                                addr,
                                &format!(
                                    "POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                                    body.len()
                                ),
                            )?
                        }
                        _ => request(
                            addr,
                            &format!(
                                "GET /plans/{} HTTP/1.1\r\nHost: x\r\n\r\n",
                                i as u64 % plans_for(4)
                            ),
                        )?,
                    };
                    if status != 200 {
                        return Err(format!("request {i} on thread {t}: status {status} {v:?}"));
                    }
                    check_consistency(&v)
                        .map_err(|e| format!("request {i} on thread {t}: {e}"))?;
                    checked.fetch_add(1, Ordering::Relaxed);
                    i += CLIENTS;
                }
                Ok(())
            }));
        }

        // Reload mid-flight, repeatedly, from the control thread.
        for r in 0..RELOADS {
            std::thread::sleep(Duration::from_millis(60));
            let (status, v) = request(
                addr,
                "POST /reload HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
            )
            .expect("reload answers");
            assert_eq!(status, 200, "reload {r}: {v:?}");
            let generation = v
                .get("generation")
                .and_then(json::Value::as_u64)
                .expect("reload names the new generation");
            assert_eq!(generation, r + 2, "reloads land in order");
        }
        std::thread::sleep(Duration::from_millis(60));
        stop.store(true, Ordering::Relaxed);

        for h in handles {
            h.join()
                .expect("client thread")
                .expect("consistent responses");
        }
    });

    // The final generation is the last reload's, and traffic flowed
    // through the whole soak.
    assert_eq!(service.generation().id(), RELOADS + 1);
    let total = checked.load(Ordering::Relaxed);
    assert!(total > 100, "soak only checked {total} responses");
    let (hits, _solved) = service.served();
    assert!(hits >= total, "served {hits} < checked {total}");
}

#[test]
fn reload_soak_is_consistent_serial_build() {
    soak(1);
}

#[test]
fn reload_soak_is_consistent_parallel_build() {
    soak(8);
}
