//! Differential invariants across the three recovery algorithms, checked
//! on hundreds of seeded Waxman instances rather than the single paper
//! fixture: the exact solver never loses to PM on the FMSSM objective, PM
//! never loses to RetroFlow in the tight-capacity regime the paper
//! studies, and no plan ever oversubscribes a controller.

use pm_core::{DelayBound, FmssmInstance, Optimal, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{
    spread_controllers, ControllerId, PlanMetrics, Programmability, SdWan, SdWanBuilder,
};
use pm_topo::builders::{self, WaxmanParams};
use std::time::Duration;

/// One deterministic small-world instance per seed: a connected Waxman
/// graph, farthest-point controller placement, and capacities sized just
/// 10% above the realized load — the scarce regime where the algorithms
/// actually disagree.
fn waxman_instance(seed: u64) -> Option<(SdWan, Vec<ControllerId>)> {
    let nodes = 12 + (seed % 9) as usize;
    let ctrls = 3 + (seed % 2) as usize;
    let g = builders::waxman(&WaxmanParams {
        nodes,
        seed: 0x0d1f_f000 ^ seed,
        ..Default::default()
    })
    .ok()?;
    let sites = spread_controllers(&g, ctrls).ok()?;
    let mut b = SdWanBuilder::new(g);
    for site in sites {
        b = b.controller(site, 0);
    }
    let net = b.auto_capacity(1.1).build().ok()?;

    let f = 1 + (seed % 2) as usize;
    let mut failed = vec![ControllerId(seed as usize % ctrls)];
    if f == 2 {
        let second = (seed / 3) as usize % ctrls;
        if second == failed[0].0 {
            failed.push(ControllerId((second + 1) % ctrls));
        } else {
            failed.push(ControllerId(second));
        }
    }
    failed.sort_unstable();
    Some((net, failed))
}

/// The value-programmability ordering: PM's minimum per-flow
/// programmability over recoverable flows never drops below RetroFlow's
/// (the max-min value PM optimizes and RetroFlow ignores), and both
/// plans respect residual controller capacity — on every one of 240
/// seeded instances. The *combined* FMSSM objective is not part of this
/// invariant: on roomy instances RetroFlow can tie the min and win on
/// raw total, which is exactly the trade-off Fig. 5 illustrates.
#[test]
fn pm_dominates_retroflow_on_min_programmability() {
    let mut cases = 0;
    for seed in 0..240u64 {
        let Some((net, failed)) = waxman_instance(seed) else {
            continue;
        };
        let prog = Programmability::compute(&net);
        let Ok(scenario) = net.fail(&failed) else {
            continue;
        };
        let inst = FmssmInstance::new(&scenario, &prog);
        if inst.flows().is_empty() {
            continue;
        }
        cases += 1;

        let retro = RetroFlow::new().recover(&inst).unwrap();
        let pm = Pm::new().recover(&inst).unwrap();
        retro.validate(&scenario, &prog, false).unwrap();
        pm.validate(&scenario, &prog, false).unwrap();

        let m_retro = PlanMetrics::compute(&scenario, &prog, &retro, 0.0);
        let m_pm = PlanMetrics::compute(&scenario, &prog, &pm, 0.0);
        for m in [&m_retro, &m_pm] {
            for u in &m.controller_usage {
                assert!(
                    u.used <= u.available,
                    "seed {seed}: controller {:?} oversubscribed {}/{}",
                    u.controller,
                    u.used,
                    u.available
                );
            }
        }

        let min_pm = m_pm.min_programmability_recoverable();
        let min_retro = m_retro.min_programmability_recoverable();
        assert!(
            min_pm >= min_retro,
            "seed {seed} failed={failed:?}: PM min programmability {min_pm} < RetroFlow {min_retro}"
        );
        // And when the mins differ, the lexicographic FMSSM objective
        // (min first, λ-weighted total second) must follow suit.
        if min_pm > min_retro {
            let obj_pm = inst.objective(&m_pm.per_flow_programmability, true);
            let obj_retro = inst.objective(&m_retro.per_flow_programmability, true);
            assert!(
                obj_pm >= obj_retro - 1e-9,
                "seed {seed}: objective ordering broke despite min {min_pm} > {min_retro}"
            );
        }
    }
    assert!(cases >= 200, "only {cases} usable instances");
}

/// The warm-started exact solver, run without a delay bound, can never
/// report a worse objective than the PM heuristic that seeds it — on a
/// deterministic spread of the same instance family.
#[test]
fn optimal_warm_start_dominates_pm_across_waxman_instances() {
    let mut cases = 0;
    for seed in (0..240u64).step_by(4) {
        let Some((net, failed)) = waxman_instance(seed) else {
            continue;
        };
        let prog = Programmability::compute(&net);
        let Ok(scenario) = net.fail(&failed) else {
            continue;
        };
        let inst = FmssmInstance::new(&scenario, &prog);
        if inst.flows().is_empty() {
            continue;
        }
        cases += 1;

        let pm = Pm::new().recover(&inst).unwrap();
        let m_pm = PlanMetrics::compute(&scenario, &prog, &pm, 0.0);
        let out = Optimal::new()
            .delay_bound(DelayBound::Unbounded)
            .time_limit(Duration::from_millis(500))
            .solve_detailed(&inst)
            .unwrap();
        let m_opt = PlanMetrics::compute(&scenario, &prog, &out.plan, 0.0);
        for u in &m_opt.controller_usage {
            assert!(
                u.used <= u.available,
                "seed {seed}: Optimal oversubscribed {:?}",
                u.controller
            );
        }
        let obj_opt = inst.objective(&m_opt.per_flow_programmability, true);
        let obj_pm = inst.objective(&m_pm.per_flow_programmability, true);
        assert!(
            obj_opt >= obj_pm - 1e-9,
            "seed {seed} failed={failed:?}: Optimal {obj_opt} < PM {obj_pm}"
        );
    }
    assert!(cases >= 50, "only {cases} usable instances");
}
