//! Deterministic-simulation harness for seeded failure timelines.
//!
//! Three layers of assurance over [`pm_simctl::TimelineSpace`] and the
//! `SweepEngine` timeline driver:
//!
//! 1. **Determinism properties** (proptest): the same seed produces
//!    byte-identical [`TimelineReport`]s whatever `--jobs` is set to, and
//!    `--shard i/m` outputs concatenated in shard order reassemble the
//!    unsharded run for m ∈ {1, 2, 3}.
//! 2. **Differential invariants** over 100+ seeded timelines: at every
//!    solve PM's min programmability over recoverable flows never drops
//!    below RetroFlow's, both plans respect residual controller capacity
//!    at every instant, and a timeline that ends fully recovered restores
//!    the pre-failure programmability table exactly.
//! 3. **Golden regression**: one small seeded timeline's full event log
//!    is pinned to a fixture under `results/`. Regenerate with
//!    `PM_BLESS=1 cargo test -p pm-tests-integration golden`.

use pm_bench::{EvalOptions, SweepEngine};
use pm_sdwan::{NetCache, SdWan, SdWanBuilder};
use pm_simctl::{TimelineParams, TimelineReport, TimelineSpace};
use pm_topo::{builders, NodeId};
use proptest::prelude::*;

/// A 12-node grid with four controllers: small enough for fast replays,
/// rich enough for three simultaneous failures to leave a survivor.
fn small_net() -> SdWan {
    SdWanBuilder::new(builders::grid(3, 4))
        .controller(NodeId(0), 200)
        .controller(NodeId(3), 200)
        .controller(NodeId(8), 200)
        .controller(NodeId(11), 200)
        .all_pairs_flows()
        .build()
        .expect("grid network builds")
}

fn engine_opts(jobs: usize, shard: Option<(usize, usize)>, seed: u64) -> EvalOptions {
    EvalOptions {
        jobs,
        shard,
        seed,
        batch: 2,
        skip_optimal: true,
        ..EvalOptions::default()
    }
}

/// Runs a `count`-timeline sweep on `net` and returns the reports.
fn sweep(
    net: &SdWan,
    jobs: usize,
    shard: Option<(usize, usize)>,
    seed: u64,
    count: u64,
) -> Vec<TimelineReport> {
    let engine = SweepEngine::new(net, engine_opts(jobs, shard, seed));
    let space = engine.timeline_space(count, short_params());
    let sel = engine.timeline_selection(&space);
    engine.sweep_timelines(&space, &sel)
}

/// A short horizon keeps property cases fast while still exercising
/// failures, cascades, partitions, churn and the drain.
fn short_params() -> TimelineParams {
    TimelineParams {
        horizon: pm_simctl::SimTime::from_ms(4_000.0),
        ..TimelineParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed ⇒ byte-identical reports at `--jobs 1` and `--jobs 8`,
    /// down to the pinned golden text form of every event log.
    #[test]
    fn reports_are_schedule_independent(seed in 0u64..10_000) {
        let net = small_net();
        let serial = sweep(&net, 1, None, seed, 3);
        let parallel = sweep(&net, 8, None, seed, 3);
        prop_assert_eq!(&serial, &parallel);
        for (a, b) in serial.iter().zip(&parallel) {
            prop_assert_eq!(a.event_log(), b.event_log());
        }
    }

    /// `--shard i/m` outputs concatenated in shard order reassemble the
    /// unsharded run for every m ∈ {1, 2, 3}.
    #[test]
    fn shard_unions_reassemble_the_sweep(seed in 0u64..10_000) {
        let net = small_net();
        let full = sweep(&net, 2, None, seed, 4);
        for m in 1usize..=3 {
            let mut union = Vec::new();
            for i in 1..=m {
                union.extend(sweep(&net, 2, Some((i, m)), seed, 4));
            }
            prop_assert_eq!(&union, &full, "m = {}", m);
        }
    }
}

/// The differential invariants, checked at every solve of 120 seeded
/// timelines (several hundred solves in total):
///
/// * neither plan ever oversubscribes a controller — capacities hold at
///   every instant of every timeline;
/// * PM's minimum programmability over recoverable flows never drops
///   below RetroFlow's (the max-min value PM optimizes). The raw
///   *programmable-flow set* is deliberately not compared: on roomy
///   instances RetroFlow can recover a flow PM trades away for min-side
///   gains, the same Fig. 5 trade-off `differential.rs` documents;
/// * every flow PM reports recovered carries positive programmability,
///   and PM recovers at least as many offline flows as its metrics claim.
#[test]
fn solve_invariants_hold_across_seeded_timelines() {
    let net = small_net();
    let cache = NetCache::build(&net);
    let mut solves = 0usize;
    for seed in 0..120u64 {
        let space = TimelineSpace::new(
            net.controllers().len(),
            net.flows().len(),
            seed,
            1,
            short_params(),
        );
        let timeline = space.generate(0);
        timeline
            .replay_with(&net, &cache, |record, solve| {
                let Some(s) = solve else { return };
                solves += 1;
                for (m, who) in [(s.pm_metrics, "PM"), (s.retro_metrics, "RetroFlow")] {
                    for u in &m.controller_usage {
                        assert!(
                            u.used <= u.available,
                            "seed {seed} t={}: {who} oversubscribed {:?} {}/{}",
                            record.at.as_nanos(),
                            u.controller,
                            u.used,
                            u.available
                        );
                    }
                }
                let min_pm = s.pm_metrics.min_programmability_recoverable();
                let min_retro = s.retro_metrics.min_programmability_recoverable();
                assert!(
                    min_pm >= min_retro,
                    "seed {seed} t={} failed={:?}: PM min {min_pm} < RetroFlow {min_retro}",
                    record.at.as_nanos(),
                    record.failed
                );
                assert_eq!(
                    s.pm_metrics
                        .per_flow_programmability
                        .iter()
                        .filter(|&&p| p > 0)
                        .count(),
                    s.pm_metrics.recovered_flows,
                    "seed {seed}: recovered flows must equal positive-programmability flows"
                );
            })
            .expect("seeded timelines replay");
    }
    assert!(solves >= 100, "only {solves} solves exercised");
}

/// A timeline that ends fully recovered must restore the pre-failure
/// programmability table exactly — checked across 100 seeded timelines
/// (the default drain guarantees full recovery).
#[test]
fn full_recovery_restores_the_baseline_table() {
    let net = small_net();
    let cache = NetCache::build(&net);
    for seed in 0..100u64 {
        let space = TimelineSpace::new(
            net.controllers().len(),
            net.flows().len(),
            0xface_0000 ^ seed,
            1,
            short_params(),
        );
        let report = space.generate(0).replay(&net, &cache).expect("replays");
        assert!(report.fully_recovered, "seed {seed}: drain ends recovered");
        assert!(
            report.baseline_restored,
            "seed {seed}: full recovery must restore the baseline table"
        );
        let last = report.records.last().expect("timelines are non-empty");
        assert!(last.failed.is_empty(), "seed {seed}: final failed set");
    }
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../results/golden_timeline.txt"
);
const GOLDEN_SEED: u64 = 0x0090_1de2;

/// Golden regression: the full event log of timeline 0 at a pinned seed
/// on the 3×4 grid, byte-compared against `results/golden_timeline.txt`.
/// Generation is integer-only and replay metrics are integers, so the
/// fixture is platform-stable. Regenerate with
/// `PM_BLESS=1 cargo test -p pm-tests-integration golden`.
#[test]
fn golden_timeline_event_log_is_pinned() {
    let net = small_net();
    let cache = NetCache::build(&net);
    let space = TimelineSpace::new(
        net.controllers().len(),
        net.flows().len(),
        GOLDEN_SEED,
        1,
        TimelineParams::default(),
    );
    let report = space.generate(0).replay(&net, &cache).expect("replays");
    let log = report.event_log();
    if std::env::var_os("PM_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &log).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("results/golden_timeline.txt exists; regenerate with PM_BLESS=1");
    assert_eq!(
        log, golden,
        "timeline replay diverged from the golden fixture; if the change \
         is intentional, regenerate with PM_BLESS=1"
    );
}
