//! The live telemetry plane's core guarantee: serving, sampling and
//! flight-recording are observational only — recorded sweep outputs are
//! byte-identical with the plane fully on versus fully disabled.
//!
//! Enabling the [`pm_obs`] recorder is process-global and one-way
//! (`Sampler::start` enables it), so the whole disabled-then-enabled
//! comparison lives in one test function and the disabled half runs
//! first. The HTTP endpoints are exercised in the enabled phase, against
//! the same process whose sweeps feed the ring.

use pm_bench::figures::bench_sweep_json;
use pm_bench::{CaseResult, EvalOptions, SweepEngine};
use pm_obs::json::Value;
use pm_sdwan::{SdWan, SdWanBuilder};
use pm_topo::{builders, NodeId};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn small_net() -> SdWan {
    SdWanBuilder::new(builders::grid(3, 4))
        .controller(NodeId(0), 200)
        .controller(NodeId(3), 200)
        .controller(NodeId(8), 200)
        .controller(NodeId(11), 200)
        .all_pairs_flows()
        .build()
        .expect("grid network builds")
}

fn options(jobs: usize) -> EvalOptions {
    EvalOptions {
        jobs,
        skip_optimal: true,
        ..EvalOptions::default()
    }
}

/// The `BENCH_sweep.json` body for k = 1..=3 at `jobs`, with the
/// wall-clock lines and the worker count blanked — everything else is a
/// recorded result and must not move when the plane is on.
fn sweep_rows(net: &SdWan, jobs: usize) -> String {
    let opts = options(jobs);
    let engine = SweepEngine::new(net, opts);
    let sweeps: Vec<(usize, Vec<CaseResult>)> = (1..=3).map(|k| (k, engine.sweep(k))).collect();
    let refs: Vec<(usize, &[CaseResult])> =
        sweeps.iter().map(|(k, c)| (*k, c.as_slice())).collect();
    let json = bench_sweep_json("telemetry_plane", jobs, &refs);
    json.lines()
        .filter(|l| !l.contains("\"mean_ms\"") && !l.trim_start().starts_with("\"jobs\":"))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Minimal HTTP GET; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (
        head.lines().next().unwrap_or("").to_string(),
        body.to_string(),
    )
}

/// A light but real check of the Prometheus 0.0.4 exposition grammar:
/// every line is a comment or `name[{labels}] value [timestamp_ms]`.
fn assert_prometheus_exposition(text: &str) {
    assert!(!text.is_empty(), "exposition must not be empty");
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_and_labels, tail) = match line.rfind('}') {
            Some(end) => (&line[..=end], line[end + 1..].trim_start()),
            None => line.split_once(' ').expect("sample has a value"),
        };
        let name = name_and_labels
            .split('{')
            .next()
            .expect("split never empty");
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        let mut tokens = tail.split_whitespace();
        let value = tokens.next().expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
            "bad sample value in {line:?}"
        );
        if let Some(ts) = tokens.next() {
            assert!(ts.parse::<i64>().is_ok(), "bad timestamp in {line:?}");
        }
        assert!(tokens.next().is_none(), "trailing tokens in {line:?}");
    }
}

#[test]
fn live_plane_is_observational_only_and_the_endpoints_serve_it() {
    let net = small_net();

    // Phase 1: fully disabled — nothing in this binary has enabled the
    // recorder yet, let alone started a sampler or server.
    assert!(!pm_obs::enabled(), "recorder must start disabled");
    let off_serial = sweep_rows(&net, 1);
    let off_parallel = sweep_rows(&net, 8);
    assert_eq!(off_serial, off_parallel);

    // Phase 2: the full plane — a fast sampler and a live HTTP server.
    let sampler = pm_obs::Sampler::start(pm_obs::SamplerConfig {
        interval: Duration::from_millis(20),
        ..Default::default()
    });
    let server = pm_obs::MetricsServer::serve("127.0.0.1:0").expect("ephemeral bind");
    let addr = server.local_addr();
    assert!(pm_obs::enabled(), "sampler enables the recorder");

    // Let the sampler thread take its baseline snapshot and cross a
    // boundary before the first burst — otherwise a fast burst can be
    // absorbed into the baseline and never appear as a delta.
    std::thread::sleep(Duration::from_millis(45));
    // Drive sweeps in separate sampling windows so the ring accumulates
    // at least two intervals with movement.
    let on_serial = sweep_rows(&net, 1);
    std::thread::sleep(Duration::from_millis(50));
    let on_parallel = sweep_rows(&net, 8);
    std::thread::sleep(Duration::from_millis(50));

    assert_eq!(off_serial, on_serial, "jobs=1: the plane changed results");
    assert_eq!(
        off_parallel, on_parallel,
        "jobs=8: the plane changed results"
    );

    // The endpoints answer while the plane is live.
    let (status, body) = http_get(addr, "/healthz");
    assert!(status.contains(" 200 "), "{status}");
    assert_eq!(body, "ok\n");

    let (status, prom) = http_get(addr, "/metrics");
    assert!(status.contains(" 200 "), "{status}");
    assert_prometheus_exposition(&prom);
    assert!(
        prom.contains("pm_sweep_cases_total"),
        "sweep counters exported:\n{prom}"
    );
    assert!(
        prom.contains("pm_ts_counter_rate"),
        "timestamped interval rates exported:\n{prom}"
    );

    let (status, mjson) = http_get(addr, "/metrics.json");
    assert!(status.contains(" 200 "), "{status}");
    let doc = pm_obs::json::parse(&mjson).expect("metrics.json parses");
    assert_eq!(
        doc.get("schema_version").and_then(Value::as_u64),
        Some(1),
        "schema stays v1"
    );
    assert!(
        doc.get("timeseries").is_some(),
        "additive timeseries member present once sampled"
    );

    let (status, tsjson) = http_get(addr, "/timeseries.json");
    assert!(status.contains(" 200 "), "{status}");
    let ts = pm_obs::json::parse(&tsjson).expect("timeseries.json parses");
    let intervals = ts
        .get("intervals")
        .and_then(Value::items)
        .expect("intervals array");
    assert!(
        intervals.len() >= 2,
        "expected >= 2 intervals, got {}",
        intervals.len()
    );
    // Counter rates advance: the sweep.cases totals across moving
    // intervals are strictly increasing, and at least two intervals saw
    // movement (the two sweep bursts above landed in different windows).
    let case_totals: Vec<u64> = intervals
        .iter()
        .filter_map(|iv| {
            iv.get("counters")
                .and_then(|c| c.get("sweep.cases"))
                .and_then(|c| c.get("total"))
                .and_then(Value::as_u64)
        })
        .collect();
    assert!(
        case_totals.len() >= 2,
        "expected >= 2 intervals with advancing sweep.cases, got {case_totals:?}\n{tsjson}"
    );
    assert!(
        case_totals.windows(2).all(|w| w[0] < w[1]),
        "totals must advance: {case_totals:?}"
    );

    let (status, _) = http_get(addr, "/nope");
    assert!(status.contains(" 404 "), "{status}");

    // Teardown is clean: server first, then the sampler's final interval.
    drop(server);
    drop(sampler);
}
