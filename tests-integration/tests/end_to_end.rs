//! Cross-crate integration: topology → SD-WAN → FMSSM → algorithms →
//! metrics → simulation, exercised together the way a user would.

use pm_core::{DelayBound, FmssmInstance, Optimal, Pg, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{ControllerId, PlanMetrics, Programmability, SdWanBuilder};
use pm_simctl::{RecoveryTiming, SimTime, Simulation};
use pm_tests_integration::paper_fixture;
use pm_topo::{builders, NodeId};
use std::time::Duration;

/// The paper's central qualitative claims, checked on every two-failure
/// case: PM and PG recover every recoverable flow with balanced (≥ 2)
/// programmability and dominate RetroFlow on total programmability;
/// RetroFlow leaves flows at zero.
#[test]
fn two_failure_shape_matches_paper() {
    let (net, prog) = paper_fixture();
    let m = net.controllers().len();
    let mut pm_beats_retro = 0;
    let mut cases = 0;
    for a in 0..m {
        for b in a + 1..m {
            cases += 1;
            let scenario = net.fail(&[ControllerId(a), ControllerId(b)]).unwrap();
            let inst = FmssmInstance::new(&scenario, &prog);

            let retro = RetroFlow::new().recover(&inst).unwrap();
            let pm = Pm::new().recover(&inst).unwrap();
            let pg = Pg::new().recover(&inst).unwrap();
            retro.validate(&scenario, &prog, false).unwrap();
            pm.validate(&scenario, &prog, false).unwrap();
            pg.validate(&scenario, &prog, true).unwrap();

            let m_retro = PlanMetrics::compute(&scenario, &prog, &retro, 0.0);
            let m_pm = PlanMetrics::compute(&scenario, &prog, &pm, 0.0);
            let m_pg = PlanMetrics::compute(&scenario, &prog, &pg, 0.48);

            // Fig. 5(a): PM/PG balanced with min ≥ 2 whenever they recover
            // everything; RetroFlow's min is 0 when it leaves flows behind.
            if m_pm.recovered_flows == m_pm.recoverable_flows {
                assert!(
                    m_pm.min_programmability_recoverable() >= 2,
                    "case ({a},{b})"
                );
            }
            if m_pg.recovered_flows == m_pg.recoverable_flows {
                assert!(
                    m_pg.min_programmability_recoverable() >= 2,
                    "case ({a},{b})"
                );
            }
            if m_retro.recovered_flows < m_retro.recoverable_flows {
                assert_eq!(m_retro.min_programmability_recoverable(), 0);
            }

            // Fig. 5(b)/(c): PM at least matches RetroFlow everywhere.
            assert!(
                m_pm.total_programmability >= m_retro.total_programmability,
                "case ({a},{b})"
            );
            assert!(m_pm.recovered_flows >= m_retro.recovered_flows);
            if m_pm.total_programmability > m_retro.total_programmability {
                pm_beats_retro += 1;
            }

            // Fig. 5(d): PM recovers at least as many switches.
            assert!(m_pm.recovered_switches >= m_retro.recovered_switches);
        }
    }
    // PM must strictly beat RetroFlow in the vast majority of cases.
    assert!(pm_beats_retro * 10 >= cases * 9, "{pm_beats_retro}/{cases}");
}

#[test]
fn headline_case_reproduces_the_paper_story() {
    // (13, 20): the hub's control cost exceeds every residual capacity, so
    // switch-level RetroFlow cannot recover it but per-flow PM can — the
    // mechanism behind the paper's "315 %" number.
    let (net, prog) = paper_fixture();
    let scenario = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
    let hub = pm_sdwan::SwitchId(13);
    for &c in scenario.active_controllers() {
        assert!(net.gamma(hub) > scenario.residual_capacity(c));
    }
    let inst = FmssmInstance::new(&scenario, &prog);
    let retro = RetroFlow::new().recover(&inst).unwrap();
    let pm = Pm::new().recover(&inst).unwrap();
    assert_eq!(
        retro.controller_of(hub),
        None,
        "RetroFlow cannot adopt the hub"
    );
    assert!(
        pm.controller_of(hub).is_some(),
        "PM adopts the hub per-flow"
    );
    let m_retro = PlanMetrics::compute(&scenario, &prog, &retro, 0.0);
    let m_pm = PlanMetrics::compute(&scenario, &prog, &pm, 0.0);
    let gain = m_pm.total_programmability as f64 / m_retro.total_programmability.max(1) as f64;
    assert!(gain > 1.5, "PM/RetroFlow gain only {gain:.2}x");
}

#[test]
fn optimal_warm_start_dominates_pm_without_delay_bound() {
    let (net, prog) = paper_fixture();
    let scenario = net.fail(&[ControllerId(3), ControllerId(4)]).unwrap();
    let inst = FmssmInstance::new(&scenario, &prog);
    let pm = Pm::new().recover(&inst).unwrap();
    let m_pm = PlanMetrics::compute(&scenario, &prog, &pm, 0.0);
    let out = Optimal::new()
        .delay_bound(DelayBound::Unbounded)
        .time_limit(Duration::from_secs(3))
        .solve_detailed(&inst)
        .unwrap();
    let m_opt = PlanMetrics::compute(&scenario, &prog, &out.plan, 0.0);
    assert!(
        inst.objective(&m_opt.per_flow_programmability, true)
            >= inst.objective(&m_pm.per_flow_programmability, true) - 1e-9
    );
}

#[test]
fn plans_animate_in_the_simulator() {
    let (net, prog) = paper_fixture();
    let failed = [ControllerId(3)];
    let scenario = net.fail(&failed).unwrap();
    let inst = FmssmInstance::new(&scenario, &prog);
    let plan = Pm::new().recover(&inst).unwrap();
    let mut sim = Simulation::new(&net);
    sim.schedule_failure(SimTime::from_ms(10.0), &failed);
    sim.schedule_recovery(
        SimTime::from_ms(20.0),
        &scenario,
        &plan,
        RecoveryTiming::default(),
    );
    let report = sim.run(SimTime::from_ms(60_000.0)).unwrap();
    assert!(report.all_flows_deliverable);
    assert_eq!(report.flow_mods_sent, plan.sdn_count());
    // Static capacity use equals dynamic FlowMod count for per-flow plans.
    let metrics = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
    assert_eq!(
        metrics.total_capacity_used() as usize,
        report.flow_mods_sent
    );
}

#[test]
fn pipeline_works_on_generated_topologies() {
    // The whole stack on a Waxman WAN — nothing is ATT-specific.
    let g = builders::waxman(&pm_topo::builders::WaxmanParams {
        nodes: 20,
        seed: 11,
        ..Default::default()
    })
    .unwrap();
    let net = SdWanBuilder::new(g)
        .controller(NodeId(0), 2_000)
        .controller(NodeId(10), 2_000)
        .controller(NodeId(19), 2_000)
        .build()
        .unwrap();
    let prog = Programmability::compute(&net);
    let scenario = net.fail(&[ControllerId(0)]).unwrap();
    let inst = FmssmInstance::new(&scenario, &prog);
    for algo in [
        &RetroFlow::new() as &dyn RecoveryAlgorithm,
        &Pm::new(),
        &Pg::new(),
    ] {
        let plan = algo.recover(&inst).unwrap();
        plan.validate(&scenario, &prog, algo.is_flow_level())
            .unwrap();
    }
}

#[test]
fn metrics_capacity_equals_plan_usage_for_all_algorithms() {
    let (net, prog) = paper_fixture();
    let scenario = net.fail(&[ControllerId(2), ControllerId(3)]).unwrap();
    let inst = FmssmInstance::new(&scenario, &prog);
    for algo in [
        &RetroFlow::new() as &dyn RecoveryAlgorithm,
        &Pm::new(),
        &Pg::new(),
    ] {
        let plan = algo.recover(&inst).unwrap();
        let metrics = PlanMetrics::compute(&scenario, &prog, &plan, 0.0);
        let usage: u32 = plan.controller_usage(&scenario).values().sum();
        assert_eq!(metrics.total_capacity_used(), usage, "{}", algo.name());
        // No controller is overcommitted.
        for u in &metrics.controller_usage {
            assert!(u.used <= u.available, "{} overcommits {u:?}", algo.name());
        }
    }
}
