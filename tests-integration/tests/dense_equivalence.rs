//! Property tests for the dense index-space layout: the flat, arena-indexed
//! tables (programmability lookup, `FmssmInstance` positions, plan
//! validation) must agree everywhere with the ID-native reference semantics
//! they replaced — sparse-map lookups that simply miss on unknown ids.
//!
//! Networks are random Waxman graphs with randomly placed controllers plus
//! the paper's ATT setup; failure sets are random proper subsets of the
//! controllers.

use pm_core::{FmssmInstance, Pg, Pm, RecoveryAlgorithm, RetroFlow};
use pm_sdwan::{ControllerId, FlowId, NetCache, Programmability, SdWan, SdWanBuilder, SwitchId};
use pm_topo::{builders, NodeId};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random connected Waxman network with `m` controllers spread over the
/// node set and all-pairs flows. Fully determined by its arguments.
fn waxman_net(nodes: usize, m: usize, capacity: u32, seed: u64) -> SdWan {
    let graph = builders::waxman(&builders::WaxmanParams {
        nodes,
        seed,
        ..Default::default()
    })
    .expect("valid waxman parameters");
    let mut b = SdWanBuilder::new(graph).allow_overload();
    for i in 0..m {
        b = b.controller(NodeId(i * nodes / m), capacity);
    }
    b.all_pairs_flows().build().expect("network builds")
}

/// A failure set of `k` distinct controllers starting at `start` (mod `m`),
/// leaving at least one survivor.
fn failure_set(m: usize, k: usize, start: usize) -> Vec<ControllerId> {
    (0..k.min(m - 1))
        .map(|i| ControllerId((start + i) % m))
        .collect()
}

/// The legacy view of the programmability table: a sparse map holding only
/// the β = 1 entries, any other key reading as absent.
fn sparse_reference(net: &SdWan, prog: &Programmability) -> HashMap<(FlowId, SwitchId), u32> {
    let mut map = HashMap::new();
    for l in 0..net.flows().len() {
        let l = FlowId(l);
        for &(s, pbar) in prog.flow_entries(l) {
            map.insert((l, s), pbar);
        }
    }
    map
}

/// Flat-table lookups must agree with the sparse reference on the whole
/// id universe *and* beyond it (out-of-range ids read as absent, exactly
/// like a map miss).
fn assert_table_matches_reference(net: &SdWan, prog: &Programmability) {
    let reference = sparse_reference(net, prog);
    for l in 0..net.flows().len() + 2 {
        let l = FlowId(l);
        for s in 0..net.switch_count() + 2 {
            let s = SwitchId(s);
            let want = reference.get(&(l, s)).copied().unwrap_or(0);
            assert_eq!(prog.pbar(l, s), want, "pbar mismatch at ({l:?}, {s:?})");
            assert_eq!(
                prog.beta(l, s),
                want != 0,
                "beta mismatch at ({l:?}, {s:?})"
            );
        }
    }
}

/// Instances built with and without the [`NetCache`] must expose identical
/// dense views, and every positional table must round-trip through the ids.
fn assert_instance_consistent(net: &SdWan, failed: &[ControllerId]) {
    let prog = Programmability::compute(net);
    let cache = NetCache::build(net);
    let plain_sc = net.fail(failed).expect("valid failure set");
    let cached_sc = net.fail_cached(failed, &cache).expect("valid failure set");
    let plain = FmssmInstance::new(&plain_sc, &prog);
    let cached = FmssmInstance::with_cache(&cached_sc, cache.programmability(), &cache);

    assert_eq!(plain.switches(), cached.switches());
    assert_eq!(plain.flows(), cached.flows());
    assert_eq!(plain.controllers(), cached.controllers());
    assert_eq!(plain.residuals(), cached.residuals());
    for ip in 0..plain.switches().len() {
        assert_eq!(plain.switch_entries(ip), cached.switch_entries(ip));
        assert_eq!(plain.gamma(ip), cached.gamma(ip));
        assert_eq!(
            plain.controllers_by_delay(ip),
            cached.controllers_by_delay(ip)
        );
        assert_eq!(plain.switch_position(plain.switches()[ip]), Some(ip));
    }
    for lp in 0..plain.flows().len() {
        assert_eq!(plain.flow_entries(lp), cached.flow_entries(lp));
        assert_eq!(plain.flow_position(plain.flows()[lp]), Some(lp));
    }
    for (jp, &c) in plain.controllers().iter().enumerate() {
        assert_eq!(plain.controller_position(c), Some(jp));
        assert_eq!(cached.controller_position(c), Some(jp));
    }
    for &c in failed {
        assert_eq!(
            plain.controller_position(c),
            None,
            "failed {c:?} has no position"
        );
    }
}

/// Every heuristic must produce the same (valid) plan from the cached and
/// uncached instance builds.
fn assert_plans_agree(net: &SdWan, failed: &[ControllerId]) {
    let prog = Programmability::compute(net);
    let cache = NetCache::build(net);
    let plain_sc = net.fail(failed).expect("valid failure set");
    let cached_sc = net.fail_cached(failed, &cache).expect("valid failure set");
    let plain = FmssmInstance::new(&plain_sc, &prog);
    let cached = FmssmInstance::with_cache(&cached_sc, cache.programmability(), &cache);
    let algos: [&dyn RecoveryAlgorithm; 3] = [&Pm::new(), &RetroFlow::new(), &Pg::new()];
    for algo in algos {
        let a = algo.recover(&plain).expect("recovers");
        let b = algo.recover(&cached).expect("recovers");
        assert_eq!(a, b, "{} plan differs cached vs uncached", algo.name());
        a.validate(&plain_sc, &prog, algo.is_flow_level())
            .expect("valid plan");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn programmability_table_matches_sparse_reference(
        nodes in 8usize..=14,
        m in 2usize..=4,
        capacity in 50u32..=300,
        seed in 0u64..10_000,
    ) {
        let net = waxman_net(nodes, m, capacity, seed);
        assert_table_matches_reference(&net, &Programmability::compute(&net));
        // The cached compute fills the identical table.
        let cache = NetCache::build(&net);
        assert_table_matches_reference(&net, cache.programmability());
    }

    #[test]
    fn instance_fields_agree_on_random_networks(
        nodes in 8usize..=14,
        m in 2usize..=4,
        capacity in 50u32..=300,
        seed in 0u64..10_000,
        k in 1usize..=3,
        start in 0usize..4,
    ) {
        let net = waxman_net(nodes, m, capacity, seed);
        assert_instance_consistent(&net, &failure_set(m, k, start));
    }

    #[test]
    fn heuristic_plans_agree_on_random_networks(
        nodes in 8usize..=12,
        m in 2usize..=4,
        capacity in 50u32..=300,
        seed in 0u64..10_000,
        k in 1usize..=3,
        start in 0usize..4,
    ) {
        let net = waxman_net(nodes, m, capacity, seed);
        assert_plans_agree(&net, &failure_set(m, k, start));
    }
}

#[test]
fn att_setup_agrees_end_to_end() {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup");
    assert_table_matches_reference(&net, &Programmability::compute(&net));
    let m = net.controllers().len();
    for k in 1..=3 {
        let failed = failure_set(m, k, k);
        assert_instance_consistent(&net, &failed);
        assert_plans_agree(&net, &failed);
    }
}
