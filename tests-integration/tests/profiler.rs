//! The span-stack profiler's core guarantees: sampling is observational
//! only (recorded sweep outputs are byte-identical profiler-on versus
//! disabled, serial and parallel), the folded profile obeys the
//! Brendan-Gregg grammar with frames drawn from real recorded span
//! names, and the offline self-time analysis reconciles exactly with
//! the span totals the metrics JSON reports.
//!
//! Enabling the [`pm_obs`] recorder is process-global and one-way
//! (`Profiler::start` enables it), so the disabled-then-enabled
//! comparison lives in one test function and the disabled half runs
//! first. The `/profile.folded` endpoint plus the HEAD / 405 method
//! grammar are exercised against the same live process.

use pm_bench::figures::bench_sweep_json;
use pm_bench::{CaseResult, EvalOptions, SweepEngine};
use pm_sdwan::{SdWan, SdWanBuilder};
use pm_topo::{builders, NodeId};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn small_net() -> SdWan {
    SdWanBuilder::new(builders::grid(3, 4))
        .controller(NodeId(0), 200)
        .controller(NodeId(3), 200)
        .controller(NodeId(8), 200)
        .controller(NodeId(11), 200)
        .all_pairs_flows()
        .build()
        .expect("grid network builds")
}

fn options(jobs: usize) -> EvalOptions {
    EvalOptions {
        jobs,
        skip_optimal: true,
        ..EvalOptions::default()
    }
}

/// The `BENCH_sweep.json` body for k = 1..=3 at `jobs`, with the
/// wall-clock lines and the worker count blanked — everything else is a
/// recorded result and must not move when the profiler samples.
fn sweep_rows(net: &SdWan, jobs: usize) -> String {
    let opts = options(jobs);
    let engine = SweepEngine::new(net, opts);
    let sweeps: Vec<(usize, Vec<CaseResult>)> = (1..=3).map(|k| (k, engine.sweep(k))).collect();
    let refs: Vec<(usize, &[CaseResult])> =
        sweeps.iter().map(|(k, c)| (*k, c.as_slice())).collect();
    let json = bench_sweep_json("profiler", jobs, &refs);
    json.lines()
        .filter(|l| !l.contains("\"mean_ms\"") && !l.trim_start().starts_with("\"jobs\":"))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Minimal HTTP GET; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let (head, body) = raw_request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    );
    (head.lines().next().unwrap_or("").to_string(), body)
}

/// Sends a raw request verbatim; returns (full header block, body).
fn raw_request(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// Brendan-Gregg folded grammar: every line is `frame(;frame)* COUNT`
/// with non-empty frames and a positive integer count.
fn assert_folded_grammar(text: &str) {
    for line in text.lines() {
        let (stack, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("folded line has no count: {line:?}"));
        assert!(
            !stack.is_empty() && stack.split(';').all(|f| !f.is_empty()),
            "empty frame in folded line: {line:?}"
        );
        let n: u64 = count
            .parse()
            .unwrap_or_else(|_| panic!("folded count not an integer: {line:?}"));
        assert!(n > 0, "zero-count folded line: {line:?}");
    }
}

#[test]
fn profiler_is_observational_and_profiles_reconcile_with_metrics() {
    let net = small_net();

    // Phase 1: fully disabled — nothing in this binary has enabled the
    // recorder yet, and no profiler has ever run.
    assert!(!pm_obs::enabled(), "recorder must start disabled");
    assert!(!pm_obs::prof::profiling(), "profiler must start disabled");
    assert_eq!(pm_obs::prof::folded_text(), "", "no profile before a run");
    let off_serial = sweep_rows(&net, 1);
    let off_parallel = sweep_rows(&net, 8);
    assert_eq!(off_serial, off_parallel);

    // Phase 2: a fast pacer plus the live HTTP server.
    let profiler = pm_obs::Profiler::start(pm_obs::ProfilerConfig {
        interval: Duration::from_millis(2),
    });
    let server = pm_obs::MetricsServer::serve("127.0.0.1:0").expect("ephemeral bind");
    let addr = server.local_addr();
    assert!(pm_obs::enabled(), "profiler enables the recorder");
    assert!(pm_obs::prof::profiling());

    let on_serial = sweep_rows(&net, 1);
    let on_parallel = sweep_rows(&net, 8);
    assert_eq!(
        off_serial, on_serial,
        "jobs=1: the profiler changed results"
    );
    assert_eq!(
        off_parallel, on_parallel,
        "jobs=8: the profiler changed results"
    );

    // A deterministic sample: taken explicitly while a named span is
    // held open, so the profile is non-empty regardless of pacer timing.
    {
        let _held = pm_obs::span("itest.profiled");
        pm_obs::prof::sample_now();
    }
    assert!(!profiler.is_empty(), "explicit sample landed");

    // The live endpoint serves the folded profile; its frames are real
    // recorded span names (every sampled span has completed by now).
    let (status, folded) = http_get(addr, "/profile.folded");
    assert!(status.contains(" 200 "), "{status}");
    assert_folded_grammar(&folded);
    assert!(
        folded.lines().any(|l| l.starts_with("itest.profiled ")),
        "held span sampled as a root frame:\n{folded}"
    );
    let names: BTreeSet<String> = pm_obs::prof::recorded_spans()
        .into_iter()
        .map(|s| s.name)
        .collect();
    for line in folded.lines() {
        let (stack, _) = line.rsplit_once(' ').expect("grammar checked above");
        for frame in stack.split(';') {
            assert!(
                names.contains(frame),
                "sampled frame {frame:?} is not a recorded span name:\n{folded}"
            );
        }
    }

    // Method grammar on the same endpoint: HEAD answers like GET with
    // the body suppressed, anything else is 405 with an Allow header.
    let (head, body) = raw_request(
        addr,
        "HEAD /profile.folded HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    assert!(head.contains(" 200 "), "{head}");
    assert!(body.is_empty(), "HEAD must suppress the body: {body:?}");
    assert!(
        head.contains(&format!("Content-Length: {}", folded.len())),
        "HEAD carries GET's length:\n{head}"
    );
    let (head, _) = raw_request(
        addr,
        "POST /profile.folded HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    assert!(head.contains(" 405 "), "{head}");
    assert!(head.contains("Allow: GET"), "{head}");

    // Teardown: server first, then the profiler folds its final sample.
    drop(server);
    drop(profiler);
    assert!(!pm_obs::prof::profiling(), "drop disarms the pacer");
    let final_folded = pm_obs::prof::folded_text();
    assert_folded_grammar(&final_folded);

    // Offline self-time analysis reconciles exactly with the span
    // aggregates the metrics JSON reports: same names, same counts, same
    // inclusive totals; exclusive time never exceeds inclusive.
    let spans = pm_obs::prof::recorded_spans();
    let selfs = pm_obs::prof::self_times(&spans);
    let doc =
        pm_obs::baseline::parse_metrics(&pm_obs::metrics_json()).expect("metrics.json parses");
    assert_eq!(
        selfs.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
        doc.spans.keys().map(String::as_str).collect::<Vec<_>>(),
        "same span names, same order"
    );
    let mut some_exclusive_is_smaller = false;
    for st in &selfs {
        let agg = &doc.spans[&st.name];
        assert_eq!(st.count, agg.count, "{}: count reconciles", st.name);
        assert_eq!(st.total_ns, agg.total_ns, "{}: total reconciles", st.name);
        assert!(st.self_ns <= st.total_ns, "{}: self <= total", st.name);
        some_exclusive_is_smaller |= st.self_ns < st.total_ns;
    }
    assert!(
        some_exclusive_is_smaller,
        "nested sweep spans must shed child time somewhere"
    );

    // The critical path is non-empty and starts at a root whose duration
    // bounds every later step.
    let chain = pm_obs::prof::critical_path(&spans);
    assert!(!chain.is_empty());
    assert_eq!(chain[0].depth, 0);
    for (i, step) in chain.iter().enumerate() {
        assert_eq!(step.depth, i, "depths are consecutive");
        assert!(
            step.dur_ns <= chain[0].dur_ns,
            "children never outlast the chosen root"
        );
    }
}
