//! Property: no combination of the telemetry plane's knobs moves a
//! recorded case row. `--sample-interval` on/off and `--serve` on/off
//! (in every combination, at serial and parallel job counts) must leave
//! the `BENCH_sweep.json` case rows byte-identical.
//!
//! This lives in its own test binary: [`pm_obs::Sampler::start`] enables
//! the process-global recorder, which would race the disabled phase of
//! the `telemetry_plane` test if they shared a process. Here the
//! reference rows are simply "no sampler, no server" — the recorder
//! itself being on or off is the other binary's concern.

use pm_bench::figures::bench_sweep_json;
use pm_bench::{CaseResult, EvalOptions, SweepEngine};
use pm_sdwan::{SdWan, SdWanBuilder};
use pm_topo::{builders, NodeId};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

fn small_net() -> &'static SdWan {
    static NET: OnceLock<SdWan> = OnceLock::new();
    NET.get_or_init(|| {
        SdWanBuilder::new(builders::grid(3, 4))
            .controller(NodeId(0), 200)
            .controller(NodeId(3), 200)
            .controller(NodeId(8), 200)
            .controller(NodeId(11), 200)
            .all_pairs_flows()
            .build()
            .expect("grid network builds")
    })
}

/// `BENCH_sweep.json` for k = 1..=2 at `jobs`, volatile lines blanked.
fn sweep_rows(jobs: usize) -> String {
    let opts = EvalOptions {
        jobs,
        skip_optimal: true,
        ..EvalOptions::default()
    };
    let engine = SweepEngine::new(small_net(), opts);
    let sweeps: Vec<(usize, Vec<CaseResult>)> = (1..=2).map(|k| (k, engine.sweep(k))).collect();
    let refs: Vec<(usize, &[CaseResult])> =
        sweeps.iter().map(|(k, c)| (*k, c.as_slice())).collect();
    let json = bench_sweep_json("telemetry_plane_prop", jobs, &refs);
    json.lines()
        .filter(|l| !l.contains("\"mean_ms\"") && !l.trim_start().starts_with("\"jobs\":"))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Reference rows per job count, captured once with no plane active.
fn reference_rows(jobs: usize) -> &'static str {
    static SERIAL: OnceLock<String> = OnceLock::new();
    static PARALLEL: OnceLock<String> = OnceLock::new();
    match jobs {
        1 => SERIAL.get_or_init(|| sweep_rows(1)),
        8 => PARALLEL.get_or_init(|| sweep_rows(8)),
        other => panic!("no reference for jobs={other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn plane_knobs_never_move_case_rows(
        (jobs, sample, serve) in (0u8..2, 0u8..2, 0u8..2)
            .prop_map(|(j, sa, se)| (if j == 0 { 1usize } else { 8 }, sa == 1, se == 1)),
    ) {
        let reference = reference_rows(jobs);
        let sampler = sample.then(|| {
            pm_obs::Sampler::start(pm_obs::SamplerConfig {
                interval: Duration::from_millis(10),
                ..Default::default()
            })
        });
        let server = serve.then(|| {
            pm_obs::MetricsServer::serve("127.0.0.1:0").expect("ephemeral bind")
        });
        let rows = sweep_rows(jobs);
        drop(server);
        drop(sampler);
        prop_assert_eq!(
            rows,
            reference,
            "jobs={} sample={} serve={} moved the case rows",
            jobs,
            sample,
            serve
        );
    }
}
