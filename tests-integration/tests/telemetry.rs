//! The event log's core guarantee: streaming progress never perturbs
//! sweep results.
//!
//! [`EventLog`] emission wraps the per-case closure inside
//! [`SweepEngine::run_cases`]; this test pins that the rendered metric
//! tables are byte-identical with the log on or off, at `--jobs 1` and
//! `--jobs 8`, and that the JSONL stream itself is well-formed (every
//! line parses, sequence numbers and done/total counts add up, worker
//! ids stay in range).

use pm_bench::figures::metrics_report;
use pm_bench::{EvalOptions, EventLog, SweepEngine};
use pm_sdwan::{SdWan, SdWanBuilder};
use pm_topo::{builders, NodeId};
use std::path::Path;
use std::sync::Arc;

fn small_net() -> SdWan {
    SdWanBuilder::new(builders::grid(3, 4))
        .controller(NodeId(0), 200)
        .controller(NodeId(3), 200)
        .controller(NodeId(8), 200)
        .controller(NodeId(11), 200)
        .all_pairs_flows()
        .build()
        .expect("grid network builds")
}

/// Rendered metric tables for k = 1..=3 at `jobs`, with or without an
/// event log attached.
fn recorded_outputs(net: &SdWan, jobs: usize, events: Option<Arc<EventLog>>) -> String {
    let opts = EvalOptions {
        jobs,
        skip_optimal: true,
        events,
        ..EvalOptions::default()
    };
    let engine = SweepEngine::new(net, opts.clone());
    let mut out = String::new();
    for k in 1..=3 {
        out.push_str(&metrics_report(
            &engine.sweep(k),
            k,
            "telemetry",
            true,
            &opts,
        ));
    }
    out
}

/// Parses the JSONL stream and checks its internal consistency; returns
/// the number of `case_finish` lines.
fn check_event_stream(path: &Path, jobs: usize) -> usize {
    let text = std::fs::read_to_string(path).expect("event log written");
    let mut sweeps = 0;
    let mut finishes = 0;
    let mut last_done = 0;
    for line in text.lines() {
        pm_obs::json::validate(line).expect(line);
        let field = |key: &str| -> Option<u64> {
            let at = line.find(&format!("\"{key}\": "))? + key.len() + 4;
            line[at..].split([',', '}']).next()?.trim().parse().ok()
        };
        if line.contains("\"event\": \"sweep_start\"") {
            sweeps += 1;
            last_done = 0;
        } else if line.contains("\"event\": \"case_finish\"") {
            finishes += 1;
            let done = field("done").expect("done field");
            assert_eq!(done, last_done + 1, "done counts up within a sweep: {line}");
            last_done = done;
            assert!(done <= field("total").expect("total field"), "{line}");
            let worker = field("worker").expect("worker field") as usize;
            assert!(worker < jobs.max(1), "worker id in range: {line}");
        }
    }
    assert_eq!(sweeps, 3, "one sweep_start per k");
    assert_eq!(
        text.matches("\"event\": \"sweep_finish\"").count(),
        3,
        "one sweep_finish per k"
    );
    finishes
}

#[test]
fn event_log_never_changes_sweep_results() {
    let net = small_net();
    let dir = std::env::temp_dir().join(format!("pm-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // 3×4 grid, 4 controllers: C(4,1)+C(4,2)+C(4,3) = 14 failure cases.
    let plain_serial = recorded_outputs(&net, 1, None);
    let plain_parallel = recorded_outputs(&net, 8, None);
    assert_eq!(plain_serial, plain_parallel);

    for jobs in [1usize, 8] {
        let path = dir.join(format!("events-{jobs}.jsonl"));
        let log = Arc::new(EventLog::create(Some(&path), false).expect("log opens"));
        let streamed = recorded_outputs(&net, jobs, Some(Arc::clone(&log)));
        log.close().expect("log flushes");
        assert_eq!(
            plain_serial, streamed,
            "jobs={jobs}: event streaming changed results"
        );
        assert_eq!(check_event_stream(&path, jobs), 14);
    }

    std::fs::remove_dir_all(&dir).ok();

    // Prometheus coverage of a real sweep, in the same test because the
    // recorder (like the counters it feeds) is process-global: enable it
    // only after the on/off comparison above is done.
    pm_obs::enable();
    pm_obs::reset();
    recorded_outputs(&net, 2, None);
    let prom = pm_obs::prometheus_text();
    assert!(
        prom.contains("# TYPE pm_sweep_cases_total counter"),
        "{prom}"
    );
    assert!(prom.contains("pm_sweep_cases_total 14"), "{prom}");
    assert!(prom.contains("# TYPE pm_sweep_queue_wait_ns histogram"));
    assert!(prom.contains("le=\"+Inf\""));
    assert!(prom.contains("pm_span_count{span=\"sweep.case\"} 14"));
}
