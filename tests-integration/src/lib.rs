//! Cross-crate integration tests live in `tests/`; this library only hosts
//! shared fixtures.

use pm_sdwan::{Programmability, SdWan, SdWanBuilder};

/// The paper's evaluation network plus its programmability table, built
/// once per fixture call.
pub fn paper_fixture() -> (SdWan, Programmability) {
    let net = SdWanBuilder::att_paper_setup()
        .build()
        .expect("paper setup builds");
    let prog = Programmability::compute(&net);
    (net, prog)
}
