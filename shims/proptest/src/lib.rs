//! A small, offline, drop-in subset of the [proptest](https://docs.rs/proptest)
//! API, so the workspace's property tests build and run without crates.io
//! access.
//!
//! Differences from real proptest, by design:
//!
//! * Generation is **deterministic**: every test case draws from a PRNG
//!   seeded by the test's module path, name and case index, so failures
//!   reproduce exactly across runs and machines.
//! * There is **no shrinking** — a failing case reports its inputs via the
//!   assertion message only.
//! * Only the strategy combinators this workspace uses are implemented:
//!   integer/float ranges, tuples, `collection::vec`, `Just`, `prop_map`,
//!   `prop_flat_map`, `prop_filter_map`.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 PRNG used for all generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds a generator for one `(test, case)` pair.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}

/// How many random cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite fast
        // while still exercising plenty of structure.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keeps regenerating until `f` returns `Some`.
    ///
    /// Panics after 100 000 consecutive rejections, mirroring proptest's
    /// "too many global rejects" error.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            source: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..100_000 {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map: too many rejects ({})", self.whence);
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategies {
    ($(($($S:ident : $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Defines property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in arb_pair()) { ... }
/// }
/// ```
///
/// Bodies may use `prop_assert!`/`prop_assert_eq!` and `return Ok(());`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __pt_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __pt_rng);)+
                let __pt_outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(msg) = __pt_outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current property case (usable only inside
/// [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that fails the current property case (usable only inside
/// [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), lhs, rhs
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), lhs, rhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::collection;
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn determinism_across_rng_instances() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (3usize..=14).generate(&mut rng);
            assert!((3..=14).contains(&v));
            let w = (-4i32..=6).generate(&mut rng);
            assert!((-4..=6).contains(&w));
            let f = (0.1f64..10.0).generate(&mut rng);
            assert!((0.1..10.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::for_case("lens", 0);
        let s = collection::vec(0u32..5, 2..=6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires patterns, multiple args and early Ok returns.
        #[test]
        fn macro_smoke((a, b) in (0u32..10, 0u32..10), k in 1usize..4) {
            if k == 0 {
                return Ok(());
            }
            prop_assert!(a < 10 && b < 10, "out of range: {a} {b}");
            prop_assert_eq!(k.min(3), k);
        }
    }
}
