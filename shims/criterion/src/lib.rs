//! A small, offline, drop-in subset of the
//! [criterion](https://docs.rs/criterion) benchmarking API, so the
//! workspace's benches build and run without crates.io access.
//!
//! Timing is a plain best-of-samples wall-clock measurement printed to
//! stdout — no statistics, plots or baselines. `cargo bench -- --test`
//! (the CI smoke mode) runs every benchmark body exactly once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time per benchmark; samples stop once it is exceeded.
const TARGET: Duration = Duration::from_millis(300);
/// Maximum samples per benchmark.
const MAX_SAMPLES: u32 = 50;

/// Entry point handed to benchmark functions.
pub struct Criterion {
    /// `--test` smoke mode: run each body once, skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.test_mode, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.criterion.test_mode, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the body.
pub struct Bencher {
    test_mode: bool,
    /// Best observed per-iteration time, if timing ran.
    best: Option<Duration>,
}

impl Bencher {
    /// Times `f`, keeping the best per-iteration figure over several
    /// batches. In `--test` mode runs `f` once and records nothing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate a batch size so one batch is >= ~1ms.
        let mut batch: u32 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 8;
        }
        let mut best = Duration::MAX;
        let mut spent = Duration::ZERO;
        for _ in 0..MAX_SAMPLES {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            best = best.min(elapsed / batch);
            spent += elapsed;
            if spent >= TARGET {
                break;
            }
        }
        self.best = Some(best);
    }
}

fn run_one(label: &str, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        test_mode,
        best: None,
    };
    f(&mut bencher);
    match bencher.best {
        Some(best) => println!("{label:<60} time: {best:>12.3?}"),
        None if test_mode => println!("{label:<60} ok (test mode)"),
        None => println!("{label:<60} (no measurement)"),
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = <$crate::Criterion as ::std::default::Default>::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion { test_mode: true };
        let mut ran = false;
        c.bench_function("smoke", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("PM", "case").0, "PM/case");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
    }
}
